//! Criterion micro-benchmarks for the host-profiler phase taxonomy's hot
//! paths — the per-phase companions to `repro hostbench`'s whole-workload
//! numbers. Group names match `kernel_sim::hostprof::HostPhase::name()`, so
//! a hostbench phase table row and a criterion group here describe the same
//! code.
//!
//! The `hook_overhead` group measures the profiler's own tax on the hottest
//! hook site (`Machine::charge`): `dormant` is the price every ordinary run
//! pays (one relaxed atomic load), `armed` is the price a hostbench run
//! pays (span counting plus stride-sampled timing).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use kernel_sim::hostprof;
use kernel_sim::sched::USER_BASE;
use kernel_sim::trace::{TraceEvent, TraceRecord, TraceRing};
use kernel_sim::{Kernel, KernelConfig};
use ppc_cache::hierarchy::{MemSystem, MemSystemConfig};
use ppc_machine::{Machine, MachineConfig};
use ppc_mmu::addr::{EffectiveAddress, Vsid};
use ppc_mmu::htab::HashTable;
use ppc_mmu::pte::Pte;
use ppc_mmu::tlb::TlbEntry;
use ppc_mmu::translate::AccessType;

fn pte(vsid: u32, pi: u32) -> Pte {
    Pte {
        valid: true,
        vsid: Vsid::new(vsid),
        secondary: false,
        page_index: pi,
        rpn: pi + 0x300,
        referenced: false,
        changed: false,
        cache_inhibited: false,
        pp: 2,
    }
}

/// translate: the full `Mmu::translate` path (segments → BAT → TLB), the
/// htab insert, and the htab rehash — the paths behind every memory
/// reference and every reload.
fn bench_translate(c: &mut Criterion) {
    let mut g = c.benchmark_group("translate");
    g.bench_function("mmu_tlb_hit", |b| {
        let mut m = Machine::new(MachineConfig::ppc604_133());
        for pi in 0..64 {
            m.mmu.reload(
                AccessType::DataRead,
                TlbEntry {
                    vsid: Vsid::new(0),
                    page_index: pi,
                    rpn: pi,
                    cached: true,
                    writable: true,
                },
            );
        }
        let mut pi = 0u32;
        b.iter(|| {
            pi = (pi + 1) % 64;
            black_box(
                m.mmu
                    .translate(EffectiveAddress(pi << 12), AccessType::DataRead),
            )
        });
    });
    g.bench_function("mmu_tlb_miss", |b| {
        let mut m = Machine::new(MachineConfig::ppc604_133());
        let mut pi = 0u32;
        b.iter(|| {
            pi = pi.wrapping_add(1) & 0xffff;
            black_box(
                m.mmu
                    .translate(EffectiveAddress(pi << 12), AccessType::DataRead),
            )
        });
    });
    g.bench_function("htab_insert", |b| {
        let mut h = HashTable::new(2048, 0);
        let mut pi = 0u32;
        b.iter(|| {
            pi = pi.wrapping_add(1) & 0xffff;
            black_box(h.insert(pte(3, pi)))
        });
    });
    g.sample_size(20);
    g.bench_function("htab_rehash_2048_4096", |b| {
        let mut h = HashTable::new(2048, 0);
        for pi in 0..4096 {
            h.insert(pte(5, pi));
        }
        let mut up = true;
        b.iter(|| {
            let target = if up { 4096 } else { 2048 };
            up = !up;
            black_box(h.resize(target))
        });
    });
    g.finish();
}

/// cache: the `MemSystem` read path, hit and miss — the single hottest
/// phase in the hostbench profile.
fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("data_read_hit", |b| {
        let mut mem = MemSystem::new(MemSystemConfig::ppc604());
        mem.data_read(0x4000, true);
        b.iter(|| black_box(mem.data_read(0x4000, true)));
    });
    g.bench_function("data_read_streaming_miss", |b| {
        let mut mem = MemSystem::new(MemSystemConfig::ppc604());
        let mut pa = 0u32;
        b.iter(|| {
            // Stride past the line size so most accesses miss and evict.
            pa = pa.wrapping_add(4096);
            black_box(mem.data_read(pa, true))
        });
    });
    g.finish();
}

/// charge: the cycle-ledger add — trivial work, but called once per priced
/// event, so hook overhead shows up here first.
fn bench_charge(c: &mut Criterion) {
    let mut g = c.benchmark_group("charge");
    g.bench_function("charge_1", |b| {
        let mut m = Machine::new(MachineConfig::ppc604_133());
        b.iter(|| {
            m.charge(1);
            black_box(m.cycles)
        });
    });
    g.finish();
}

/// trace_write: one ring push, steady state (ring full, overwriting).
fn bench_trace_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_write");
    g.bench_function("ring_push", |b| {
        let mut ring = TraceRing::new(4096);
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            ring.push(TraceRecord {
                cycle,
                pid: 1,
                event: TraceEvent::TlbMiss {
                    ea: cycle as u32,
                    kernel: false,
                },
            });
            black_box(ring.len())
        });
    });
    g.finish();
}

/// fused_hot_paths: the common-case memory reference — a resident load and
/// a resident straight-line fetch — served by the fused single-function
/// fast path versus the layered translate→charge→cache path (DESIGN.md
/// §16). Both variants simulate identical cycles and counters; the host-ns
/// ratio between the `_fused` and `_layered` rows is the microscopic
/// version of the `repro hostbench` headline speedup.
fn bench_fused_hot_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("fused_hot_paths");
    let boot = |fused: bool| {
        let mut cfg = KernelConfig::optimized();
        cfg.fused = fused;
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), cfg);
        let pid = k.spawn_process(8).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 8).unwrap();
        // Warm the TLB and both caches so the loop measures pure hits.
        for i in 0..64 {
            let ea = EffectiveAddress(USER_BASE + i * 32);
            k.data_ref(ea, false).unwrap();
            k.exec_code(ea, 8).unwrap();
        }
        k
    };
    // Stride cache lines *within* one page: page-stride addresses all land
    // in cache set 0 and would measure the miss path instead of the hit.
    for (name, fused) in [("data_ref_fused", true), ("data_ref_layered", false)] {
        g.bench_function(name, |b| {
            let mut k = boot(fused);
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1) % 64;
                black_box(k.data_ref(EffectiveAddress(USER_BASE + i * 32), false).unwrap())
            });
        });
    }
    for (name, fused) in [("exec_code_fused", true), ("exec_code_layered", false)] {
        g.bench_function(name, |b| {
            let mut k = boot(fused);
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1) % 64;
                black_box(k.exec_code(EffectiveAddress(USER_BASE + i * 32), 8).unwrap())
            });
        });
    }
    g.finish();
}

/// hook_overhead: what the profiler itself costs at the hottest hook site.
fn bench_hook_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("hook_overhead");
    g.bench_function("charge_dormant", |b| {
        hostprof::disarm();
        let mut m = Machine::new(MachineConfig::ppc604_133());
        b.iter(|| {
            m.charge(1);
            black_box(m.cycles)
        });
    });
    g.bench_function("charge_armed", |b| {
        hostprof::arm();
        let mut m = Machine::new(MachineConfig::ppc604_133());
        b.iter(|| {
            m.charge(1);
            black_box(m.cycles)
        });
        hostprof::disarm();
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_translate,
    bench_cache,
    bench_charge,
    bench_fused_hot_paths,
    bench_trace_write,
    bench_hook_overhead
);
criterion_main!(benches);
