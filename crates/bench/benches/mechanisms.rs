//! Criterion micro-benchmarks for each MMU mechanism: regression guards for
//! the simulator's own hot paths (these measure *host* time, not simulated
//! time — simulated cycle counts are the `repro` binary's job).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use kernel_sim::sched::USER_BASE;
use kernel_sim::{Kernel, KernelConfig};
use ppc_machine::MachineConfig;
use ppc_mmu::addr::{EffectiveAddress, Vsid, PAGE_SIZE};
use ppc_mmu::htab::HashTable;
use ppc_mmu::pte::Pte;
use ppc_mmu::tlb::{Tlb, TlbConfig, TlbEntry};

fn pte(vsid: u32, pi: u32) -> Pte {
    Pte {
        valid: true,
        vsid: Vsid::new(vsid),
        secondary: false,
        page_index: pi,
        rpn: pi + 0x300,
        referenced: false,
        changed: false,
        cache_inhibited: false,
        pp: 2,
    }
}

fn bench_htab(c: &mut Criterion) {
    let mut g = c.benchmark_group("htab");
    g.bench_function("search_hit", |b| {
        let mut h = HashTable::new(2048, 0);
        for pi in 0..1024 {
            h.insert(pte(7, pi));
        }
        let mut pi = 0u32;
        b.iter(|| {
            pi = (pi + 1) % 1024;
            black_box(h.search(Vsid::new(7), pi))
        });
    });
    g.bench_function("search_miss", |b| {
        let mut h = HashTable::new(2048, 0);
        b.iter(|| black_box(h.search(Vsid::new(9), 0x123)));
    });
    g.bench_function("insert_evict", |b| {
        let mut h = HashTable::new(64, 0);
        let mut pi = 0u32;
        b.iter(|| {
            pi = pi.wrapping_add(1) & 0xffff;
            black_box(h.insert(pte(3, pi)))
        });
    });
    g.bench_function("reclaim_sweep", |b| {
        let mut h = HashTable::new(2048, 0);
        for pi in 0..8192 {
            h.insert(pte(5, pi % 0x10000));
        }
        b.iter(|| black_box(h.reclaim_zombies(64, |_| true)));
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    g.bench_function("lookup_hit", |b| {
        let mut t = Tlb::new(TlbConfig::ppc604_side());
        for pi in 0..128 {
            t.insert(TlbEntry {
                vsid: Vsid::new(1),
                page_index: pi,
                rpn: pi,
                cached: true,
                writable: true,
            });
        }
        let mut pi = 0u32;
        b.iter(|| {
            pi = (pi + 1) % 128;
            black_box(t.lookup(Vsid::new(1), pi))
        });
    });
    g.bench_function("miss_and_reload", |b| {
        let mut t = Tlb::new(TlbConfig::ppc603_side());
        let mut pi = 0u32;
        b.iter(|| {
            pi = pi.wrapping_add(1) & 0xffff;
            if t.lookup(Vsid::new(1), pi).is_none() {
                t.insert(TlbEntry {
                    vsid: Vsid::new(1),
                    page_index: pi,
                    rpn: pi,
                    cached: true,
                    writable: true,
                });
            }
        });
    });
    g.finish();
}

fn bench_kernel_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.sample_size(20);
    g.bench_function("null_syscall", |b| {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let pid = k.spawn_process(4).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 4).unwrap();
        b.iter(|| k.sys_null());
    });
    g.bench_function("warm_data_ref", |b| {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let pid = k.spawn_process(4).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 4).unwrap();
        b.iter(|| k.data_ref(EffectiveAddress(USER_BASE), false).unwrap());
    });
    g.bench_function("fault_and_unmap_page", |b| {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let pid = k.spawn_process(4).unwrap();
        k.switch_to(pid);
        b.iter(|| {
            let addr = k.sys_mmap(None, PAGE_SIZE);
            k.data_ref(EffectiveAddress(addr), true).unwrap();
            k.sys_munmap(addr, PAGE_SIZE);
        });
    });
    g.bench_function("context_switch_pair", |b| {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let a = k.spawn_process(4).unwrap();
        let z = k.spawn_process(4).unwrap();
        k.switch_to(a);
        b.iter(|| {
            k.switch_to(z);
            k.switch_to(a);
        });
    });
    g.bench_function("pipe_4k_round_trip", |b| {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let pid = k.spawn_process(8).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 4).unwrap();
        let p = k.pipe_create().unwrap();
        b.iter(|| {
            k.pipe_write(p, USER_BASE, PAGE_SIZE).unwrap();
            k.pipe_read(p, USER_BASE, PAGE_SIZE).unwrap();
        });
    });
    g.bench_function("idle_quantum", |b| {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let pid = k.spawn_process(4).unwrap();
        k.switch_to(pid);
        b.iter(|| k.run_idle(10_000));
    });
    g.finish();
}

fn bench_process_and_signals(c: &mut Criterion) {
    let mut g = c.benchmark_group("process");
    g.sample_size(20);
    g.bench_function("fork_exit", |b| {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let parent = k.spawn_process(16).unwrap();
        k.switch_to(parent);
        k.prefault(USER_BASE, 16).unwrap();
        b.iter(|| {
            let child = k.sys_fork().expect("fork");
            k.switch_to(child);
            k.exit_current();
            k.switch_to(parent);
        });
    });
    g.bench_function("cow_break", |b| {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let parent = k.spawn_process(16).unwrap();
        k.switch_to(parent);
        k.prefault(USER_BASE, 16).unwrap();
        let mut page = 0u32;
        b.iter(|| {
            // Re-fork periodically so there is always a COW page to break.
            if page.is_multiple_of(16) {
                let child = k.sys_fork().expect("fork");
                k.switch_to(child);
                k.exit_current();
                k.switch_to(parent);
            }
            k.data_ref(EffectiveAddress(USER_BASE + (page % 16) * PAGE_SIZE), true)
                .unwrap();
            page += 1;
        });
    });
    g.bench_function("signal_roundtrip", |b| {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let pid = k.spawn_process(8).unwrap();
        k.switch_to(pid);
        k.prefault(USER_BASE, 4).unwrap();
        k.sys_signal_install();
        b.iter(|| k.signal_roundtrip(USER_BASE).unwrap());
    });
    g.bench_function("multiuser_round", |b| {
        use lmbench::multiuser::{classic_mix, run_multiuser};
        b.iter(|| {
            let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
            run_multiuser(&mut k, &classic_mix(), 1)
        });
    });
    g.finish();
}

fn bench_memory_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("memhier");
    g.sample_size(10);
    for kb in [8u32, 128, 2048] {
        g.bench_function(format!("lat_mem_rd/{kb}K"), |b| {
            b.iter(|| {
                let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
                lmbench::mem::read_latency_ns(&mut k, kb)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_htab,
    bench_tlb,
    bench_kernel_paths,
    bench_process_and_signals,
    bench_memory_hierarchy
);
criterion_main!(benches);
