//! Criterion wrappers around the paper's headline measurements: one bench
//! per table/figure family, so a regression in the simulator that changes
//! the *simulated* results also shows up as a host-time change here. The
//! definitive regenerated numbers come from `repro all --full`.

use criterion::{criterion_group, criterion_main, Criterion};

use kernel_sim::{Kernel, KernelConfig, OsModel};
use lmbench::compile::{kernel_compile, CompileConfig};
use lmbench::{bw, lat};
use ppc_machine::MachineConfig;

fn bench_table1_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("pipe_bw_604_185", |b| {
        b.iter(|| {
            let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
            bw::pipe_bandwidth(&mut k)
        });
    });
    g.bench_function("pstart_603_180_no_htab", |b| {
        b.iter(|| {
            let mut k = Kernel::boot(MachineConfig::ppc603_180(), KernelConfig::optimized());
            lat::process_start(&mut k, 2)
        });
    });
    g.finish();
}

fn bench_table2_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    let eager = KernelConfig {
        htab_on_603: true,
        lazy_flush: false,
        flush_cutoff_pages: None,
        ..KernelConfig::optimized()
    };
    g.bench_function("mmap_lat_eager_603", |b| {
        b.iter(|| {
            let mut k = Kernel::boot(MachineConfig::ppc603_133(), eager);
            lat::mmap_latency(&mut k, 1)
        });
    });
    g.bench_function("mmap_lat_lazy_603", |b| {
        b.iter(|| {
            let mut k = Kernel::boot(
                MachineConfig::ppc603_133(),
                KernelConfig {
                    htab_on_603: true,
                    ..KernelConfig::optimized()
                },
            );
            lat::mmap_latency(&mut k, 1)
        });
    });
    g.finish();
}

fn bench_table3_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    for model in OsModel::table3() {
        g.bench_function(format!("null_syscall/{}", model.name), |b| {
            b.iter(|| {
                let mut k = model.boot(MachineConfig::ppc604_133());
                lat::null_syscall(&mut k, 50)
            });
        });
    }
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(10);
    g.bench_function("small_optimized", |b| {
        b.iter(|| {
            let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
            kernel_compile(&mut k, CompileConfig::small())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1_points,
    bench_table2_points,
    bench_table3_points,
    bench_compile
);
criterion_main!(benches);
