//! Block address translation (BAT) registers.

use crate::addr::{EffectiveAddress, PhysAddr};

/// One BAT register pair (upper/lower), modelled at the level the paper uses
/// them: a naturally aligned power-of-two block of effective addresses mapped
/// to an equally aligned physical block.
///
/// Block sizes range from 128 KiB to 256 MiB. A BAT hit bypasses the
/// segment/TLB/hash-table path entirely — this is what lets the paper (§5.1)
/// map kernel text and data "for free", taking zero TLB and htab entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatEntry {
    /// Effective base address of the block. Must be aligned to `len_bytes`.
    pub ea_base: u32,
    /// Physical base address of the block. Must be aligned to `len_bytes`.
    pub pa_base: u32,
    /// Block length in bytes: a power of two between 128 KiB and 256 MiB.
    pub len_bytes: u32,
    /// Whether accesses through this BAT are cacheable (I/O BATs are not).
    pub cached: bool,
}

/// Minimum architected BAT block size (128 KiB).
pub const BAT_MIN_LEN: u32 = 128 * 1024;

/// Maximum architected BAT block size (256 MiB).
pub const BAT_MAX_LEN: u32 = 256 * 1024 * 1024;

impl BatEntry {
    /// Creates a BAT entry.
    ///
    /// # Panics
    ///
    /// Panics if `len_bytes` is not a power of two in `[128 KiB, 256 MiB]`,
    /// or if either base is not aligned to the block length.
    pub fn new(ea_base: u32, pa_base: u32, len_bytes: u32, cached: bool) -> Self {
        assert!(
            len_bytes.is_power_of_two(),
            "BAT length must be a power of two"
        );
        assert!(
            (BAT_MIN_LEN..=BAT_MAX_LEN).contains(&len_bytes),
            "BAT length must be between 128 KiB and 256 MiB"
        );
        assert!(
            ea_base.is_multiple_of(len_bytes),
            "BAT effective base must be block-aligned"
        );
        assert!(
            pa_base.is_multiple_of(len_bytes),
            "BAT physical base must be block-aligned"
        );
        Self {
            ea_base,
            pa_base,
            len_bytes,
            cached,
        }
    }

    /// Returns the translation if `ea` falls inside this block.
    pub fn translate(&self, ea: EffectiveAddress) -> Option<(PhysAddr, bool)> {
        let mask = self.len_bytes - 1;
        if ea.0 & !mask == self.ea_base {
            Some((self.pa_base | (ea.0 & mask), self.cached))
        } else {
            None
        }
    }
}

/// The four instruction and four data BAT register pairs.
///
/// # Examples
///
/// ```
/// use ppc_mmu::bat::{BatEntry, BatSet};
/// use ppc_mmu::addr::EffectiveAddress;
///
/// let mut bats = BatSet::new();
/// // Map 8 MiB of kernel at 0xC0000000 -> physical 0.
/// bats.set_dbat(0, Some(BatEntry::new(0xc000_0000, 0, 8 << 20, true)));
/// let (pa, cached) = bats.translate_data(EffectiveAddress(0xc012_3456)).unwrap();
/// assert_eq!(pa, 0x0012_3456);
/// assert!(cached);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatSet {
    ibat: [Option<BatEntry>; 4],
    dbat: [Option<BatEntry>; 4],
    /// Number of data accesses satisfied by a BAT.
    pub dbat_hits: u64,
    /// Number of instruction fetches satisfied by a BAT.
    pub ibat_hits: u64,
}

impl BatSet {
    /// Creates an empty BAT set (all entries invalid).
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or clears) instruction BAT `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn set_ibat(&mut self, index: usize, entry: Option<BatEntry>) {
        self.ibat[index] = entry;
    }

    /// Installs (or clears) data BAT `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn set_dbat(&mut self, index: usize, entry: Option<BatEntry>) {
        self.dbat[index] = entry;
    }

    /// Attempts a data-side BAT translation.
    pub fn translate_data(&mut self, ea: EffectiveAddress) -> Option<(PhysAddr, bool)> {
        let hit = self.peek_data(ea);
        if hit.is_some() {
            self.dbat_hits += 1;
        }
        hit
    }

    /// Attempts an instruction-side BAT translation.
    pub fn translate_insn(&mut self, ea: EffectiveAddress) -> Option<(PhysAddr, bool)> {
        let hit = self.peek_insn(ea);
        if hit.is_some() {
            self.ibat_hits += 1;
        }
        hit
    }

    /// Stat-neutral data-side probe for the fused fast path: same match as
    /// [`BatSet::translate_data`] but does not count the hit. A caller that
    /// commits to the translation must bump `dbat_hits` itself.
    #[inline]
    pub fn peek_data(&self, ea: EffectiveAddress) -> Option<(PhysAddr, bool)> {
        self.dbat.iter().flatten().find_map(|b| b.translate(ea))
    }

    /// Stat-neutral instruction-side probe; see [`BatSet::peek_data`].
    #[inline]
    pub fn peek_insn(&self, ea: EffectiveAddress) -> Option<(PhysAddr, bool)> {
        self.ibat.iter().flatten().find_map(|b| b.translate(ea))
    }

    /// Number of valid data BATs.
    pub fn dbat_in_use(&self) -> usize {
        self.dbat.iter().flatten().count()
    }

    /// Number of valid instruction BATs.
    pub fn ibat_in_use(&self) -> usize {
        self.ibat.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_inside_and_outside() {
        let b = BatEntry::new(0xc000_0000, 0x0100_0000, BAT_MIN_LEN, true);
        assert_eq!(
            b.translate(EffectiveAddress(0xc000_0000)),
            Some((0x0100_0000, true))
        );
        assert_eq!(
            b.translate(EffectiveAddress(0xc001_ffff)),
            Some((0x0101_ffff, true))
        );
        assert_eq!(b.translate(EffectiveAddress(0xc002_0000)), None);
        assert_eq!(b.translate(EffectiveAddress(0xbfff_ffff)), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_len() {
        BatEntry::new(0, 0, 128 * 1024 + 4096, true);
    }

    #[test]
    #[should_panic(expected = "between 128 KiB")]
    fn rejects_tiny_block() {
        BatEntry::new(0, 0, 64 * 1024, true);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn rejects_misaligned_base() {
        BatEntry::new(0x0002_0000, 0, 256 * 1024, true);
    }

    #[test]
    fn data_and_insn_sides_are_separate() {
        let mut bats = BatSet::new();
        bats.set_ibat(0, Some(BatEntry::new(0xc000_0000, 0, BAT_MIN_LEN, true)));
        assert!(bats.translate_insn(EffectiveAddress(0xc000_1000)).is_some());
        assert!(bats.translate_data(EffectiveAddress(0xc000_1000)).is_none());
        assert_eq!(bats.ibat_hits, 1);
        assert_eq!(bats.dbat_hits, 0);
    }

    #[test]
    fn first_matching_bat_wins() {
        let mut bats = BatSet::new();
        bats.set_dbat(
            0,
            Some(BatEntry::new(0xc000_0000, 0x0100_0000, BAT_MIN_LEN, true)),
        );
        bats.set_dbat(
            1,
            Some(BatEntry::new(0xc000_0000, 0x0200_0000, BAT_MIN_LEN, false)),
        );
        let (pa, _) = bats.translate_data(EffectiveAddress(0xc000_0abc)).unwrap();
        assert_eq!(pa, 0x0100_0abc);
    }

    #[test]
    fn uncached_io_bat() {
        let mut bats = BatSet::new();
        bats.set_dbat(
            3,
            Some(BatEntry::new(0xf000_0000, 0xf000_0000, 16 << 20, false)),
        );
        let (_, cached) = bats.translate_data(EffectiveAddress(0xf00b_0000)).unwrap();
        assert!(!cached);
    }

    #[test]
    fn in_use_counters() {
        let mut bats = BatSet::new();
        assert_eq!(bats.dbat_in_use(), 0);
        bats.set_dbat(0, Some(BatEntry::new(0, 0, BAT_MIN_LEN, true)));
        bats.set_dbat(2, Some(BatEntry::new(0x1000_0000, 0, BAT_MIN_LEN, true)));
        assert_eq!(bats.dbat_in_use(), 2);
        bats.set_dbat(0, None);
        assert_eq!(bats.dbat_in_use(), 1);
    }

    #[test]
    fn max_size_bat() {
        let b = BatEntry::new(0xc000_0000, 0, BAT_MAX_LEN, true);
        assert!(b.translate(EffectiveAddress(0xcfff_ffff)).is_some());
        assert!(b.translate(EffectiveAddress(0xd000_0000)).is_none());
    }
}
