//! Host-profiler hook points (see `kernel-sim/src/hostprof.rs`).
//!
//! This crate sits at the bottom of the dependency graph, so it cannot call
//! the profiler directly. Instead it exposes two registerable function
//! pointers — an enter/exit pair — and a RAII [`HostSpan`] guard around the
//! hot entry points ([`Mmu::translate`], the htab probe/insert/rehash paths).
//! `kernel-sim`'s `hostprof` installs the pair when it is *armed*; dormant,
//! every guard is a single relaxed atomic load and no call.
//!
//! The phase-id namespace is shared across the whole stack. This module
//! defines the ids this crate (and `ppc-machine`, which depends on it)
//! reports; `ppc-cache` re-declares its own id and `kernel-sim` owns the
//! full taxonomy plus a test pinning all the constants to the same values.
//!
//! Everything here is plain data — no `unsafe`, no allocation, no
//! timestamps. The installed hooks do all of that on the other side.
//!
//! [`Mmu::translate`]: crate::translate::Mmu::translate

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::OnceLock;

/// Phase id: hardware address translation (BAT/TLB lookup, htab probe,
/// insert, rehash).
pub const PHASE_TRANSLATE: u8 = 0;
/// Phase id: cycle charging on the machine ledger (owned by `ppc-machine`,
/// declared here because this is the lowest crate both it and the profiler
/// can see).
pub const PHASE_CHARGE: u8 = 2;

/// Called on span entry with the phase id; returns `(previous_phase,
/// start_ns)` where `start_ns == u64::MAX` means "this span is not timed"
/// (the profiler stride-samples timestamps to keep hot paths honest).
pub type EnterFn = fn(u8) -> (u8, u64);
/// Called on span exit with `(previous_phase, phase, start_ns)`.
pub type ExitFn = fn(u8, u8, u64);
/// Called by the fused fast path with batched span counts
/// `(translate, cache, charge)`. Span *counts* are order-independent sums,
/// so adding them in bulk is exact; only the stride-sampled timing estimate
/// (already a masked, non-deterministic artifact section) loses candidate
/// sample points.
pub type BulkFn = fn(u64, u64, u64);

static ENABLED: AtomicBool = AtomicBool::new(false);
static HOOKS: OnceLock<(EnterFn, ExitFn)> = OnceLock::new();
static BULK: OnceLock<BulkFn> = OnceLock::new();

/// Installs the profiler hooks and enables the guards. The pair can only be
/// installed once per process (`OnceLock`); re-arming just re-enables it.
pub fn install(enter: EnterFn, exit: ExitFn) {
    let _ = HOOKS.set((enter, exit));
    ENABLED.store(true, Relaxed);
}

/// Installs the bulk span-count hook used by the fused fast path. Gated by
/// the same `ENABLED` flag as the RAII spans.
pub fn install_bulk(f: BulkFn) {
    let _ = BULK.set(f);
}

/// Reports batched span counts from the fused fast path: `translate`
/// translate spans, `cache` cache spans, `charge` charge spans. One relaxed
/// load when dormant.
#[inline]
pub fn bulk(translate: u64, cache: u64, charge: u64) {
    if !ENABLED.load(Relaxed) {
        return;
    }
    if let Some(f) = BULK.get() {
        f(translate, cache, charge);
    }
}

/// Disables the guards (the installed pair stays, dormant).
pub fn disable() {
    ENABLED.store(false, Relaxed);
}

/// True when a profiler is installed and armed.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// RAII phase guard. Construct with [`span`]; the drop reports the exit.
pub struct HostSpan {
    prev: u8,
    phase: u8,
    start_ns: u64,
    active: bool,
}

/// Opens a phase span if a profiler is armed; otherwise returns an inert
/// guard at the cost of one relaxed load.
#[inline]
pub fn span(phase: u8) -> HostSpan {
    if !ENABLED.load(Relaxed) {
        return HostSpan {
            prev: 0,
            phase: 0,
            start_ns: 0,
            active: false,
        };
    }
    match HOOKS.get() {
        Some((enter, _)) => {
            let (prev, start_ns) = enter(phase);
            HostSpan {
                prev,
                phase,
                start_ns,
                active: true,
            }
        }
        None => HostSpan {
            prev: 0,
            phase: 0,
            start_ns: 0,
            active: false,
        },
    }
}

impl Drop for HostSpan {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            if let Some((_, exit)) = HOOKS.get() {
                exit(self.prev, self.phase, self.start_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dormant_span_is_inert() {
        // No profiler installed: the guard must be a no-op.
        let s = span(PHASE_TRANSLATE);
        assert!(!s.active);
        drop(s);
        assert!(!enabled());
    }
}
