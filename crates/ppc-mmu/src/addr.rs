//! Address types: effective, virtual, and physical addresses.
//!
//! The 32-bit PowerPC address pipeline (paper Figure 1):
//!
//! ```text
//! 32-bit effective address:  [ 4-bit SR# | 16-bit page index | 12-bit offset ]
//! 52-bit virtual address:    [ 24-bit VSID | 16-bit page index | 12-bit offset ]
//! 32-bit physical address:   [ 20-bit physical page number | 12-bit offset ]
//! ```

/// Base-2 log of the page size (4 KiB pages).
pub const PAGE_SHIFT: u32 = 12;

/// Page size in bytes.
pub const PAGE_SIZE: u32 = 1 << PAGE_SHIFT;

/// A raw 32-bit physical address.
pub type PhysAddr = u32;

/// A 32-bit effective (program-visible) address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EffectiveAddress(pub u32);

impl EffectiveAddress {
    /// The segment-register number: the top 4 bits.
    pub fn sr_index(self) -> usize {
        (self.0 >> 28) as usize
    }

    /// The 16-bit page index within the segment.
    pub fn page_index(self) -> u32 {
        (self.0 >> PAGE_SHIFT) & 0xffff
    }

    /// The 12-bit byte offset within the page.
    pub fn offset(self) -> u32 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// The effective page number (top 20 bits): SR# plus page index.
    pub fn epn(self) -> u32 {
        self.0 >> PAGE_SHIFT
    }

    /// The address rounded down to its page boundary.
    pub fn page_base(self) -> EffectiveAddress {
        EffectiveAddress(self.0 & !(PAGE_SIZE - 1))
    }
}

/// A 24-bit virtual segment identifier.
///
/// The paper's VSID-management tricks (§5.2 scatter constants, §7 lazy
/// flushes via a context counter) all manipulate these values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vsid(u32);

impl Vsid {
    /// Mask of the valid VSID bits.
    pub const MASK: u32 = 0x00ff_ffff;

    /// Creates a VSID, truncating to 24 bits.
    pub fn new(raw: u32) -> Self {
        Vsid(raw & Self::MASK)
    }

    /// The raw 24-bit value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// A 52-bit virtual address, decomposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VirtualAddress {
    /// The segment identifier from the segment register.
    pub vsid: Vsid,
    /// The 16-bit page index.
    pub page_index: u32,
    /// The 12-bit byte offset.
    pub offset: u32,
}

impl VirtualAddress {
    /// The 40-bit virtual page number (VSID concatenated with page index),
    /// the unit the TLB and hash table tag on.
    pub fn vpn(self) -> u64 {
        ((self.vsid.raw() as u64) << 16) | self.page_index as u64
    }

    /// The 6-bit abbreviated page index stored in an architected PTE
    /// (the high 6 bits of the page index).
    pub fn api(self) -> u32 {
        self.page_index >> 10
    }
}

/// Composes a physical address from a 20-bit physical page number and an
/// in-page offset.
pub fn phys(ppn: u32, offset: u32) -> PhysAddr {
    debug_assert!(ppn < (1 << 20), "physical page number is 20 bits");
    debug_assert!(offset < PAGE_SIZE);
    (ppn << PAGE_SHIFT) | offset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ea_decomposition() {
        let ea = EffectiveAddress(0xc012_3abc);
        assert_eq!(ea.sr_index(), 0xc);
        assert_eq!(ea.page_index(), 0x0123);
        assert_eq!(ea.offset(), 0xabc);
        assert_eq!(ea.epn(), 0xc0123);
        assert_eq!(ea.page_base().0, 0xc012_3000);
    }

    #[test]
    fn ea_boundaries() {
        assert_eq!(EffectiveAddress(0).sr_index(), 0);
        assert_eq!(EffectiveAddress(0xffff_ffff).sr_index(), 15);
        assert_eq!(EffectiveAddress(0xffff_ffff).page_index(), 0xffff);
        assert_eq!(EffectiveAddress(0xffff_ffff).offset(), 0xfff);
    }

    #[test]
    fn vsid_truncates_to_24_bits() {
        assert_eq!(Vsid::new(0xffff_ffff).raw(), 0x00ff_ffff);
        assert_eq!(Vsid::new(0x12_3456).raw(), 0x12_3456);
    }

    #[test]
    fn vpn_concatenates() {
        let va = VirtualAddress {
            vsid: Vsid::new(0xabcdef),
            page_index: 0x1234,
            offset: 0,
        };
        assert_eq!(va.vpn(), 0x00ab_cdef_1234);
    }

    #[test]
    fn api_is_top_6_bits_of_page_index() {
        let va = VirtualAddress {
            vsid: Vsid::new(1),
            page_index: 0xffff,
            offset: 0,
        };
        assert_eq!(va.api(), 0x3f);
        let va = VirtualAddress {
            vsid: Vsid::new(1),
            page_index: 0x03ff,
            offset: 0,
        };
        assert_eq!(va.api(), 0);
    }

    #[test]
    fn phys_composition() {
        assert_eq!(phys(0x12345, 0xabc), 0x1234_5abc);
    }
}
