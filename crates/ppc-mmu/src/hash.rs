//! The architected hash functions that index the page-table groups.

use crate::addr::Vsid;

/// The primary/secondary hash scheme of the PowerPC hashed page table.
///
/// The primary hash XORs the low 19 bits of the VSID with the 16-bit page
/// index; the secondary hash is the one's complement of the primary. The
/// low-order bits of the hash (per `HTABMASK`) select a PTE group (PTEG) of
/// eight entries.
///
/// Because the hash relies on VSID variation to scatter similar address
/// spaces ("the logical address spaces of processes tend to be similar so the
/// hash functions rely on the VSIDs to provide variation", paper §5.2), a
/// poor VSID allocator produces PTEG hot-spots — which experiment E-HASH
/// reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFunction {
    num_groups: u32,
}

impl HashFunction {
    /// Creates a hash for a table of `num_groups` PTEGs.
    ///
    /// # Panics
    ///
    /// Panics if `num_groups` is not a power of two (the architecture
    /// requires a power-of-two group count) or exceeds 2^19.
    pub fn new(num_groups: u32) -> Self {
        assert!(
            num_groups.is_power_of_two(),
            "PTEG count must be a power of two"
        );
        assert!(num_groups <= 1 << 19, "hash is 19 bits wide");
        Self { num_groups }
    }

    /// Number of PTEGs addressed.
    pub fn num_groups(&self) -> u32 {
        self.num_groups
    }

    /// The 19-bit primary hash value.
    pub fn primary_hash(&self, vsid: Vsid, page_index: u32) -> u32 {
        (vsid.raw() & 0x7ffff) ^ (page_index & 0xffff)
    }

    /// PTEG index for a lookup: primary, or its complement for the secondary
    /// ("overflow") group.
    pub fn pteg_index(&self, vsid: Vsid, page_index: u32, secondary: bool) -> u32 {
        let h = self.primary_hash(vsid, page_index);
        let h = if secondary { !h & 0x7ffff } else { h };
        h & (self.num_groups - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_is_xor() {
        let h = HashFunction::new(2048);
        assert_eq!(h.primary_hash(Vsid::new(0b1010), 0b0110), 0b1100);
    }

    #[test]
    fn vsid_low_19_bits_only() {
        let h = HashFunction::new(2048);
        // Bits above 19 of the VSID never affect the hash.
        assert_eq!(
            h.primary_hash(Vsid::new(0x7ffff), 0),
            h.primary_hash(Vsid::new(0xf7ffff), 0)
        );
    }

    #[test]
    fn secondary_differs_from_primary() {
        let h = HashFunction::new(2048);
        for pi in [0u32, 1, 0x1234, 0xffff] {
            let p = h.pteg_index(Vsid::new(0x42), pi, false);
            let s = h.pteg_index(Vsid::new(0x42), pi, true);
            assert_ne!(p, s, "primary and secondary PTEG must differ (pi={pi:#x})");
        }
    }

    #[test]
    fn secondary_is_complement_within_mask() {
        let h = HashFunction::new(2048);
        let p = h.pteg_index(Vsid::new(0x42), 0x777, false);
        let s = h.pteg_index(Vsid::new(0x42), 0x777, true);
        assert_eq!(s, !p & (2048 - 1));
    }

    #[test]
    fn index_is_in_range() {
        let h = HashFunction::new(512);
        for v in 0..64u32 {
            for pi in (0..0x10000u32).step_by(977) {
                assert!(h.pteg_index(Vsid::new(v * 0x111), pi, false) < 512);
                assert!(h.pteg_index(Vsid::new(v * 0x111), pi, true) < 512);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_groups() {
        HashFunction::new(1000);
    }

    #[test]
    fn identical_address_spaces_with_same_vsid_collide() {
        // This is exactly the hot-spot phenomenon of paper §5.2: two processes
        // with similar logical address spaces and *adjacent* VSIDs map to
        // adjacent PTEGs, clustering in the table.
        let h = HashFunction::new(2048);
        let a = h.pteg_index(Vsid::new(10), 0, false);
        let b = h.pteg_index(Vsid::new(11), 0, false);
        assert_eq!(b ^ a, 1, "adjacent VSIDs differ by one PTEG for page 0");
    }
}
