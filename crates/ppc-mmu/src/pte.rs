//! The architected page-table entry (PTE).

use crate::addr::Vsid;

/// An architected 8-byte PowerPC page-table entry.
///
/// The hardware PTE stores a 6-bit *abbreviated* page index (API); the
/// simulator additionally carries the full 16-bit page index so experiments
/// can audit exactly which page each slot maps (the encode/decode round trip
/// below checks that the abbreviated form is consistent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Valid bit. The idle-task reclaim (paper §7) clears this on zombies.
    pub valid: bool,
    /// The 24-bit virtual segment identifier.
    pub vsid: Vsid,
    /// Hash-function identifier: `false` = found via primary hash, `true` =
    /// secondary.
    pub secondary: bool,
    /// Full 16-bit page index (the architected entry keeps only the top 6
    /// bits; see [`Pte::api`]).
    pub page_index: u32,
    /// The 20-bit physical page number.
    pub rpn: u32,
    /// Referenced bit.
    pub referenced: bool,
    /// Changed (dirty) bit. The paper (§7) notes flushes become pure
    /// invalidates because dirty bits were pushed to the Linux PTEs at
    /// hash-table load time.
    pub changed: bool,
    /// Cache-inhibited mapping (the I bit of WIMG).
    pub cache_inhibited: bool,
    /// Page-protection bits (PP).
    pub pp: u8,
}

impl Pte {
    /// An invalid (empty) slot.
    pub fn invalid() -> Self {
        Pte {
            valid: false,
            vsid: Vsid::new(0),
            secondary: false,
            page_index: 0,
            rpn: 0,
            referenced: false,
            changed: false,
            cache_inhibited: false,
            pp: 0,
        }
    }

    /// The 6-bit abbreviated page index the hardware would store.
    pub fn api(&self) -> u32 {
        (self.page_index >> 10) & 0x3f
    }

    /// Encodes into the architected two-word format (word 0: V, VSID, H,
    /// API; word 1: RPN, R, C, WIMG-I, PP).
    pub fn encode(&self) -> (u32, u32) {
        let w0 = ((self.valid as u32) << 31)
            | (self.vsid.raw() << 7)
            | ((self.secondary as u32) << 6)
            | self.api();
        let w1 = (self.rpn << 12)
            | ((self.referenced as u32) << 8)
            | ((self.changed as u32) << 7)
            | ((self.cache_inhibited as u32) << 5)
            | (self.pp as u32 & 0x3);
        (w0, w1)
    }

    /// Decodes the architected two-word format. The full page index cannot be
    /// recovered from the abbreviated form, so only its top 6 bits are filled
    /// in (`page_index = api << 10`).
    pub fn decode(w0: u32, w1: u32) -> Self {
        Pte {
            valid: w0 >> 31 != 0,
            vsid: Vsid::new((w0 >> 7) & Vsid::MASK),
            secondary: (w0 >> 6) & 1 != 0,
            page_index: (w0 & 0x3f) << 10,
            rpn: w1 >> 12,
            referenced: (w1 >> 8) & 1 != 0,
            changed: (w1 >> 7) & 1 != 0,
            cache_inhibited: (w1 >> 5) & 1 != 0,
            pp: (w1 & 0x3) as u8,
        }
    }

    /// Whether this valid entry matches a lookup for `(vsid, page_index)` via
    /// the hash function `secondary`.
    pub fn matches(&self, vsid: Vsid, page_index: u32, secondary: bool) -> bool {
        self.valid
            && self.vsid == vsid
            && self.page_index == page_index
            && self.secondary == secondary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Pte {
        Pte {
            valid: true,
            vsid: Vsid::new(0xabcdef),
            secondary: true,
            page_index: 0xfc00, // API-aligned so decode round-trips
            rpn: 0x12345,
            referenced: true,
            changed: false,
            cache_inhibited: true,
            pp: 2,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = sample();
        let (w0, w1) = p.encode();
        let q = Pte::decode(w0, w1);
        assert_eq!(p, q);
    }

    #[test]
    fn api_extraction() {
        let mut p = sample();
        p.page_index = 0xffff;
        assert_eq!(p.api(), 0x3f);
        p.page_index = 0x03ff;
        assert_eq!(p.api(), 0);
        p.page_index = 0x0400;
        assert_eq!(p.api(), 1);
    }

    #[test]
    fn matches_requires_all_fields() {
        let p = sample();
        assert!(p.matches(Vsid::new(0xabcdef), 0xfc00, true));
        assert!(!p.matches(Vsid::new(0xabcdee), 0xfc00, true));
        assert!(!p.matches(Vsid::new(0xabcdef), 0xfc01, true));
        assert!(!p.matches(Vsid::new(0xabcdef), 0xfc00, false));
        let mut inv = p;
        inv.valid = false;
        assert!(!inv.matches(Vsid::new(0xabcdef), 0xfc00, true));
    }

    #[test]
    fn invalid_is_all_zero() {
        let (w0, w1) = Pte::invalid().encode();
        assert_eq!((w0, w1), (0, 0));
    }

    #[test]
    fn valid_bit_is_msb() {
        let mut p = sample();
        p.valid = true;
        assert_eq!(p.encode().0 >> 31, 1);
        p.valid = false;
        assert_eq!(p.encode().0 >> 31, 0);
    }
}
