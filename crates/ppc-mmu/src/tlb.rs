//! The translation look-aside buffer.

use crate::addr::Vsid;

/// One TLB entry: a cached virtual → physical translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Segment identifier of the mapping.
    pub vsid: Vsid,
    /// 16-bit page index within the segment.
    pub page_index: u32,
    /// 20-bit physical page number.
    pub rpn: u32,
    /// Whether accesses through this translation are cacheable.
    pub cached: bool,
    /// Whether stores are permitted (the PP bits); a store through a
    /// read-only entry takes a protection fault — the mechanism behind
    /// copy-on-write.
    pub writable: bool,
}

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries in this TLB.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
}

impl TlbConfig {
    /// One side (I or D) of the 603's TLB: 64 entries, 2-way.
    /// Both sides together give the paper's "128 entries" (§5.1).
    pub fn ppc603_side() -> Self {
        Self {
            entries: 64,
            ways: 2,
        }
    }

    /// One side (I or D) of the 604's TLB: 128 entries, 2-way.
    /// Both sides together give the paper's "256 entries" (§5.1).
    pub fn ppc604_side() -> Self {
        Self {
            entries: 128,
            ways: 2,
        }
    }

    /// Number of congruence classes (sets).
    pub fn sets(&self) -> u32 {
        self.entries / self.ways
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes or a non-power-of-two set count.
    pub fn validate(&self) {
        assert!(self.ways > 0 && self.entries > 0, "TLB cannot be empty");
        assert!(
            self.entries.is_multiple_of(self.ways),
            "entries must divide into ways"
        );
        assert!(
            self.sets().is_power_of_two(),
            "set count must be a power of two"
        );
    }
}

/// Statistics for one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Reloads (entries inserted after a miss).
    pub reloads: u64,
    /// `tlbie` congruence-class invalidations executed.
    pub tlbie: u64,
    /// Whole-TLB invalidations.
    pub flush_all: u64,
}

impl TlbStats {
    /// Hit rate in `[0, 1]`; `1.0` with no lookups.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    entry: Option<TlbEntry>,
    lru: u64,
}

/// A set-associative TLB indexed by the low bits of the page index (i.e. by
/// effective-address bits, as the 603/604 are) and tagged by
/// `(VSID, page index)`.
///
/// The architected `tlbie` instruction invalidates an entire congruence
/// class — all ways, regardless of VSID — which is what makes per-page
/// flushing blunt and motivates the paper's lazy VSID-switch flushes (§7).
///
/// # Examples
///
/// ```
/// use ppc_mmu::{Tlb, TlbConfig, addr::Vsid};
/// use ppc_mmu::tlb::TlbEntry;
///
/// let mut tlb = Tlb::new(TlbConfig::ppc603_side());
/// tlb.insert(TlbEntry {
///     vsid: Vsid::new(1), page_index: 5, rpn: 0x99, cached: true, writable: true,
/// });
/// assert!(tlb.lookup(Vsid::new(1), 5).is_some());
/// assert!(tlb.lookup(Vsid::new(2), 5).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// Every slot in one contiguous allocation, indexed `set * ways + way` —
    /// the whole congruence class sits on one host cache line for the hot
    /// probe.
    slots: Box<[Slot]>,
    ways: usize,
    stats: TlbStats,
    tick: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn new(cfg: TlbConfig) -> Self {
        cfg.validate();
        let ways = cfg.ways as usize;
        let slots =
            vec![Slot { entry: None, lru: 0 }; ways * cfg.sets() as usize].into_boxed_slice();
        Self {
            cfg,
            slots,
            ways,
            stats: TlbStats::default(),
            tick: 0,
        }
    }

    /// The TLB geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    fn set_of(&self, page_index: u32) -> usize {
        (page_index & (self.cfg.sets() - 1)) as usize
    }

    /// Looks up a translation. Counts a hit or miss.
    pub fn lookup(&mut self, vsid: Vsid, page_index: u32) -> Option<TlbEntry> {
        match self.peek(vsid, page_index) {
            Some((idx, e)) => {
                self.commit_hit(idx);
                Some(e)
            }
            None => {
                self.tick += 1;
                self.stats.lookups += 1;
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stat-neutral probe for the fused fast path: finds the matching slot
    /// (as a flat index into `self.slots`) *without* touching the tick, the
    /// LRU stamp, or any counter. A hit the caller decides to take must be
    /// followed by [`Tlb::commit_hit`]; a `None` (or an abandoned peek) leaves
    /// the TLB exactly as it was, so a layered re-lookup counts once.
    #[inline]
    pub fn peek(&self, vsid: Vsid, page_index: u32) -> Option<(usize, TlbEntry)> {
        let base = self.set_of(page_index) * self.ways;
        self.slots[base..base + self.ways]
            .iter()
            .enumerate()
            .find_map(|(w, slot)| {
                slot.entry
                    .filter(|e| e.vsid == vsid && e.page_index == page_index)
                    .map(|e| (base + w, e))
            })
    }

    /// Commits the hit found by [`Tlb::peek`]: exactly the bookkeeping
    /// [`Tlb::lookup`] performs on a hit (tick, lookup + hit counters, LRU).
    #[inline]
    pub fn commit_hit(&mut self, idx: usize) {
        self.tick += 1;
        self.stats.lookups += 1;
        self.stats.hits += 1;
        self.slots[idx].lru = self.tick;
    }

    /// Inserts (reloads) a translation, evicting the LRU way of its set.
    pub fn insert(&mut self, entry: TlbEntry) {
        self.tick += 1;
        self.stats.reloads += 1;
        let base = self.set_of(entry.page_index) * self.ways;
        let tick = self.tick;
        // Reuse an invalid way, else the LRU way.
        let set_slots = &self.slots[base..base + self.ways];
        let way = set_slots
            .iter()
            .position(|s| s.entry.is_none())
            .unwrap_or_else(|| {
                set_slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.lru)
                    .map(|(i, _)| i)
                    .expect("TLB set cannot be empty")
            });
        self.slots[base + way] = Slot {
            entry: Some(entry),
            lru: tick,
        };
    }

    /// `tlbie`: invalidates the whole congruence class selected by
    /// `page_index` — every way, every VSID. Returns how many valid entries
    /// were dropped (including innocent bystanders).
    pub fn tlbie(&mut self, page_index: u32) -> u32 {
        self.stats.tlbie += 1;
        let base = self.set_of(page_index) * self.ways;
        let mut dropped = 0;
        for slot in &mut self.slots[base..base + self.ways] {
            if slot.entry.take().is_some() {
                dropped += 1;
            }
        }
        dropped
    }

    /// Invalidates every entry.
    pub fn flush_all(&mut self) {
        self.stats.flush_all += 1;
        for slot in &mut self.slots {
            slot.entry = None;
        }
    }

    /// Number of valid entries.
    pub fn valid_entries(&self) -> u32 {
        self.slots.iter().filter(|s| s.entry.is_some()).count() as u32
    }

    /// Number of valid entries whose VSID satisfies `pred` — used to measure
    /// the kernel's TLB footprint (§5.1: "33% of the TLB entries under
    /// Linux/PPC were for kernel text, data and I/O pages").
    pub fn entries_matching(&self, mut pred: impl FnMut(Vsid) -> bool) -> u32 {
        self.slots
            .iter()
            .filter(|s| s.entry.is_some_and(|e| pred(e.vsid)))
            .count() as u32
    }

    /// Every valid entry, in set/way order. Read-only: does not touch LRU
    /// state or statistics, so a sweep over the entries is invisible to the
    /// replacement policy (the consistency checker depends on this).
    pub fn entries(&self) -> impl Iterator<Item = TlbEntry> + '_ {
        self.slots.iter().filter_map(|s| s.entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vsid: u32, pi: u32) -> TlbEntry {
        TlbEntry {
            vsid: Vsid::new(vsid),
            page_index: pi,
            rpn: 0x1000 + pi,
            cached: true,
            writable: true,
        }
    }

    #[test]
    fn geometry() {
        assert_eq!(TlbConfig::ppc603_side().sets(), 32);
        assert_eq!(TlbConfig::ppc604_side().sets(), 64);
        TlbConfig::ppc603_side().validate();
        TlbConfig::ppc604_side().validate();
    }

    #[test]
    fn paper_total_entry_counts() {
        // Paper §5.1: "The PowerPC 603 TLB has 128 entries and the 604 has
        // 256 entries" (I + D sides combined).
        assert_eq!(2 * TlbConfig::ppc603_side().entries, 128);
        assert_eq!(2 * TlbConfig::ppc604_side().entries, 256);
    }

    #[test]
    fn miss_then_reload_then_hit() {
        let mut t = Tlb::new(TlbConfig::ppc603_side());
        assert!(t.lookup(Vsid::new(1), 7).is_none());
        t.insert(entry(1, 7));
        let e = t.lookup(Vsid::new(1), 7).unwrap();
        assert_eq!(e.rpn, 0x1007);
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().reloads, 1);
    }

    #[test]
    fn same_page_different_vsid_misses() {
        // Distinct VSIDs are distinct address spaces (the lazy-flush
        // cornerstone): a stale entry under an old VSID can never match.
        let mut t = Tlb::new(TlbConfig::ppc603_side());
        t.insert(entry(1, 7));
        assert!(t.lookup(Vsid::new(2), 7).is_none());
    }

    #[test]
    fn lru_within_set() {
        let mut t = Tlb::new(TlbConfig {
            entries: 4,
            ways: 2,
        });
        // Set = pi & 1. Three entries in set 0.
        t.insert(entry(1, 0));
        t.insert(entry(1, 2));
        t.lookup(Vsid::new(1), 0); // make pi=0 MRU
        t.insert(entry(1, 4)); // evicts pi=2
        assert!(t.lookup(Vsid::new(1), 0).is_some());
        assert!(t.lookup(Vsid::new(1), 2).is_none());
        assert!(t.lookup(Vsid::new(1), 4).is_some());
    }

    #[test]
    fn tlbie_kills_whole_congruence_class() {
        let mut t = Tlb::new(TlbConfig {
            entries: 4,
            ways: 2,
        });
        t.insert(entry(1, 0));
        t.insert(entry(2, 2)); // same set (pi even), different VSID
        t.insert(entry(1, 1)); // other set
        let dropped = t.tlbie(4); // set 0
        assert_eq!(dropped, 2, "tlbie drops bystanders in the class too");
        assert!(t.lookup(Vsid::new(1), 1).is_some());
        assert_eq!(t.stats().tlbie, 1);
    }

    #[test]
    fn flush_all_empties() {
        let mut t = Tlb::new(TlbConfig::ppc604_side());
        for pi in 0..50 {
            t.insert(entry(1, pi));
        }
        assert_eq!(t.valid_entries(), 50);
        t.flush_all();
        assert_eq!(t.valid_entries(), 0);
        assert_eq!(t.stats().flush_all, 1);
    }

    #[test]
    fn entries_matching_counts_kernel_footprint() {
        let mut t = Tlb::new(TlbConfig::ppc604_side());
        let kernel = Vsid::new(0xfffff);
        for pi in 0..30 {
            t.insert(entry(1, pi));
        }
        for pi in 30..40 {
            t.insert(TlbEntry {
                vsid: kernel,
                page_index: pi,
                rpn: 0,
                cached: true,
                writable: true,
            });
        }
        assert_eq!(t.entries_matching(|v| v == kernel), 10);
        assert_eq!(t.entries_matching(|v| v != kernel), 30);
    }

    #[test]
    fn hit_rate() {
        let mut t = Tlb::new(TlbConfig::ppc603_side());
        t.insert(entry(1, 1));
        t.lookup(Vsid::new(1), 1);
        t.lookup(Vsid::new(1), 2);
        assert!((t.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fills_invalid_ways_before_evicting() {
        let mut t = Tlb::new(TlbConfig {
            entries: 4,
            ways: 2,
        });
        t.insert(entry(1, 0));
        t.insert(entry(1, 2));
        assert_eq!(
            t.valid_entries(),
            2,
            "both ways of set 0 in use, no eviction"
        );
        assert!(t.lookup(Vsid::new(1), 0).is_some());
        assert!(t.lookup(Vsid::new(1), 2).is_some());
    }
}
