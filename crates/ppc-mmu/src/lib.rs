//! PowerPC 603/604 MMU hardware model for the MMU Tricks (OSDI 1999)
//! reproduction.
//!
//! The 32-bit PowerPC MMU translates addresses in two stages (paper §3,
//! Figure 1):
//!
//! 1. A 32-bit *effective address* (EA) selects one of sixteen segment
//!    registers by its top 4 bits; the register supplies a 24-bit *virtual
//!    segment identifier* (VSID) which replaces those bits, yielding a 52-bit
//!    *virtual address*.
//! 2. The virtual address is looked up in a TLB and, on a miss, in an
//!    architected in-memory hashed page table (the *htab*), organized as
//!    groups ("PTEGs") of eight page-table entries, addressed by a primary
//!    hash and — on overflow — a secondary (complemented) hash.
//!
//! In parallel, *block address translation* (BAT) registers can map large
//! contiguous blocks (128 KiB and up) without consuming TLB or htab entries;
//! the paper's §5.1 uses them for kernel text and data.
//!
//! This crate models all of those mechanisms *structurally*: real tags, real
//! sets, real PTEG contents, real replacement decisions. Cycle costs are
//! deliberately left to `ppc-machine`; this crate reports *what happened*
//! (hits, misses, evictions, memory accesses performed) and the machine model
//! prices it.
//!
//! # Examples
//!
//! ```
//! use ppc_mmu::{addr::{EffectiveAddress, Vsid}, segment::SegmentRegisters};
//!
//! let mut srs = SegmentRegisters::new();
//! srs.set(3, Vsid::new(0x123456));
//! let ea = EffectiveAddress(0x3000_1abc);
//! let va = srs.translate(ea);
//! assert_eq!(va.vsid, Vsid::new(0x123456));
//! assert_eq!(va.page_index, 0x0001);
//! assert_eq!(va.offset, 0xabc);
//! ```

pub mod addr;
pub mod bat;
pub mod hash;
pub mod host;
pub mod htab;
pub mod pte;
pub mod segment;
pub mod tlb;
pub mod translate;

pub use addr::{EffectiveAddress, PhysAddr, VirtualAddress, Vsid, PAGE_SHIFT, PAGE_SIZE};
pub use bat::{BatEntry, BatSet};
pub use hash::HashFunction;
pub use htab::{HashTable, HtabStats, InsertOutcome, ResizeOutcome, SearchOutcome};
pub use pte::Pte;
pub use segment::SegmentRegisters;
pub use tlb::{Tlb, TlbConfig, TlbStats};
pub use translate::{AccessType, Mmu, MmuConfig, Translation};
