//! The composed MMU front end: segments + BATs + split TLBs.

use crate::addr::{phys, EffectiveAddress, PhysAddr, VirtualAddress, Vsid};
use crate::bat::BatSet;
use crate::segment::SegmentRegisters;
use crate::tlb::{Tlb, TlbConfig, TlbEntry};

/// The kind of access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessType {
    /// Instruction fetch (uses IBATs and the ITLB).
    InsnFetch,
    /// Data load (uses DBATs and the DTLB).
    DataRead,
    /// Data store (uses DBATs and the DTLB).
    DataWrite,
}

impl AccessType {
    /// Whether this is a data-side access.
    pub fn is_data(self) -> bool {
        !matches!(self, AccessType::InsnFetch)
    }
}

/// Result of the hardware's first-level translation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translation {
    /// A BAT matched; translation bypassed the TLB and page tables entirely.
    Bat {
        /// Resulting physical address.
        pa: PhysAddr,
        /// Whether the access is cacheable.
        cached: bool,
    },
    /// The TLB held the translation.
    TlbHit {
        /// Resulting physical address.
        pa: PhysAddr,
        /// Whether the access is cacheable.
        cached: bool,
        /// Whether stores are permitted; a store through a read-only entry
        /// is a protection fault (the copy-on-write mechanism).
        writable: bool,
    },
    /// The TLB missed; the machine model must run the reload path (hardware
    /// hash-table walk on the 604, software handler on the 603) for the
    /// returned virtual address.
    TlbMiss {
        /// The virtual address needing a reload.
        va: VirtualAddress,
    },
}

/// MMU geometry.
#[derive(Debug, Clone, Copy)]
pub struct MmuConfig {
    /// Instruction TLB geometry.
    pub itlb: TlbConfig,
    /// Data TLB geometry.
    pub dtlb: TlbConfig,
}

impl MmuConfig {
    /// 603 geometry (2 × 64-entry, 2-way TLBs).
    pub fn ppc603() -> Self {
        Self {
            itlb: TlbConfig::ppc603_side(),
            dtlb: TlbConfig::ppc603_side(),
        }
    }

    /// 604 geometry (2 × 128-entry, 2-way TLBs).
    pub fn ppc604() -> Self {
        Self {
            itlb: TlbConfig::ppc604_side(),
            dtlb: TlbConfig::ppc604_side(),
        }
    }
}

/// The MMU front end: segment registers, BAT registers and the two TLBs.
///
/// The hash-table / Linux-page-table reload machinery deliberately lives a
/// layer up (in `ppc-machine` and `kernel-sim`): on a [`Translation::TlbMiss`]
/// the hardware (or the OS, on the 603) runs a reload and then calls
/// [`Mmu::reload`].
///
/// # Examples
///
/// ```
/// use ppc_mmu::{AccessType, Mmu, MmuConfig, Translation};
/// use ppc_mmu::addr::{EffectiveAddress, Vsid};
/// use ppc_mmu::tlb::TlbEntry;
///
/// let mut mmu = Mmu::new(MmuConfig::ppc603());
/// mmu.segments.set(0, Vsid::new(0x42));
/// let ea = EffectiveAddress(0x0000_3123);
/// let Translation::TlbMiss { va } = mmu.translate(ea, AccessType::DataRead) else {
///     panic!("cold TLB must miss");
/// };
/// mmu.reload(AccessType::DataRead, TlbEntry {
///     vsid: va.vsid, page_index: va.page_index, rpn: 0x777, cached: true,
///     writable: true,
/// });
/// assert!(matches!(
///     mmu.translate(ea, AccessType::DataRead),
///     Translation::TlbHit { pa: 0x0077_7123, cached: true, writable: true }
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct Mmu {
    /// The sixteen segment registers.
    pub segments: SegmentRegisters,
    /// The BAT registers.
    pub bats: BatSet,
    /// Instruction TLB.
    pub itlb: Tlb,
    /// Data TLB.
    pub dtlb: Tlb,
}

impl Mmu {
    /// Creates an MMU with empty TLBs, no BATs, and zeroed segments.
    pub fn new(cfg: MmuConfig) -> Self {
        Self {
            segments: SegmentRegisters::new(),
            bats: BatSet::new(),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
        }
    }

    /// Runs the hardware translation attempt for `ea`: BATs first (they win
    /// in parallel with the page lookup, paper §3), then the TLB.
    pub fn translate(&mut self, ea: EffectiveAddress, at: AccessType) -> Translation {
        let _host = crate::host::span(crate::host::PHASE_TRANSLATE);
        let bat = if at.is_data() {
            self.bats.translate_data(ea)
        } else {
            self.bats.translate_insn(ea)
        };
        if let Some((pa, cached)) = bat {
            return Translation::Bat { pa, cached };
        }
        let va = self.segments.translate(ea);
        let tlb = if at.is_data() {
            &mut self.dtlb
        } else {
            &mut self.itlb
        };
        match tlb.lookup(va.vsid, va.page_index) {
            Some(e) => Translation::TlbHit {
                pa: phys(e.rpn, va.offset),
                cached: e.cached,
                writable: e.writable,
            },
            None => Translation::TlbMiss { va },
        }
    }

    /// Installs a reloaded translation into the appropriate TLB.
    pub fn reload(&mut self, at: AccessType, entry: TlbEntry) {
        let tlb = if at.is_data() {
            &mut self.dtlb
        } else {
            &mut self.itlb
        };
        tlb.insert(entry);
    }

    /// `tlbie`: invalidates the congruence class of `page_index` in *both*
    /// TLBs, as the architected instruction does. Returns total entries
    /// dropped.
    pub fn tlbie(&mut self, page_index: u32) -> u32 {
        self.itlb.tlbie(page_index) + self.dtlb.tlbie(page_index)
    }

    /// Invalidates both TLBs completely.
    pub fn flush_tlbs(&mut self) {
        self.itlb.flush_all();
        self.dtlb.flush_all();
    }

    /// Total valid entries across both TLBs.
    pub fn tlb_valid_entries(&self) -> u32 {
        self.itlb.valid_entries() + self.dtlb.valid_entries()
    }

    /// Valid entries (both TLBs) whose VSID satisfies `pred`.
    pub fn tlb_entries_matching(&self, mut pred: impl FnMut(Vsid) -> bool) -> u32 {
        self.itlb.entries_matching(&mut pred) + self.dtlb.entries_matching(&mut pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::BatEntry;

    fn mmu() -> Mmu {
        let mut m = Mmu::new(MmuConfig::ppc603());
        m.segments.set(0, Vsid::new(0x100));
        m.segments.set(0xc, Vsid::new(0xfff00));
        m
    }

    #[test]
    fn bat_wins_over_tlb() {
        let mut m = mmu();
        // Install a TLB entry for the same page, then a BAT covering it; the
        // BAT must win (hardware abandons the page translation on BAT hit).
        let va = m.segments.translate(EffectiveAddress(0xc000_0000));
        m.reload(
            AccessType::DataRead,
            TlbEntry {
                vsid: va.vsid,
                page_index: va.page_index,
                rpn: 0x111,
                cached: true,
                writable: true,
            },
        );
        m.bats
            .set_dbat(0, Some(BatEntry::new(0xc000_0000, 0, 8 << 20, true)));
        match m.translate(EffectiveAddress(0xc000_0abc), AccessType::DataRead) {
            Translation::Bat { pa, cached } => {
                assert_eq!(pa, 0xabc);
                assert!(cached);
            }
            other => panic!("expected BAT hit, got {other:?}"),
        }
    }

    #[test]
    fn bat_does_not_touch_tlb_stats() {
        let mut m = mmu();
        m.bats
            .set_dbat(0, Some(BatEntry::new(0xc000_0000, 0, 8 << 20, true)));
        m.translate(EffectiveAddress(0xc000_0000), AccessType::DataRead);
        assert_eq!(m.dtlb.stats().lookups, 0, "BAT hits never consult the TLB");
    }

    #[test]
    fn miss_reload_hit_round_trip() {
        let mut m = mmu();
        let ea = EffectiveAddress(0x0000_5678);
        let Translation::TlbMiss { va } = m.translate(ea, AccessType::DataRead) else {
            panic!("cold miss expected");
        };
        assert_eq!(va.vsid, Vsid::new(0x100));
        m.reload(
            AccessType::DataRead,
            TlbEntry {
                vsid: va.vsid,
                page_index: va.page_index,
                rpn: 0x2a,
                cached: true,
                writable: true,
            },
        );
        match m.translate(ea, AccessType::DataRead) {
            Translation::TlbHit { pa, .. } => assert_eq!(pa, 0x0002_a678),
            other => panic!("expected TLB hit, got {other:?}"),
        }
    }

    #[test]
    fn itlb_and_dtlb_are_split() {
        let mut m = mmu();
        let ea = EffectiveAddress(0x0000_1000);
        let Translation::TlbMiss { va } = m.translate(ea, AccessType::DataRead) else {
            panic!();
        };
        m.reload(
            AccessType::DataRead,
            TlbEntry {
                vsid: va.vsid,
                page_index: va.page_index,
                rpn: 1,
                cached: true,
                writable: true,
            },
        );
        assert!(matches!(
            m.translate(ea, AccessType::InsnFetch),
            Translation::TlbMiss { .. }
        ));
        assert!(matches!(
            m.translate(ea, AccessType::DataRead),
            Translation::TlbHit { .. }
        ));
    }

    #[test]
    fn tlbie_hits_both_tlbs() {
        let mut m = mmu();
        let e = TlbEntry {
            vsid: Vsid::new(0x100),
            page_index: 4,
            rpn: 9,
            cached: true,
            writable: true,
        };
        m.reload(AccessType::DataRead, e);
        m.reload(AccessType::InsnFetch, e);
        assert_eq!(m.tlb_valid_entries(), 2);
        assert_eq!(m.tlbie(4), 2);
        assert_eq!(m.tlb_valid_entries(), 0);
    }

    #[test]
    fn vsid_switch_orphans_old_entries() {
        // The essence of lazy flushing: after changing the segment register's
        // VSID, old TLB entries stop matching without being invalidated.
        let mut m = mmu();
        let ea = EffectiveAddress(0x0000_2000);
        let Translation::TlbMiss { va } = m.translate(ea, AccessType::DataRead) else {
            panic!();
        };
        m.reload(
            AccessType::DataRead,
            TlbEntry {
                vsid: va.vsid,
                page_index: va.page_index,
                rpn: 3,
                cached: true,
                writable: true,
            },
        );
        assert!(matches!(
            m.translate(ea, AccessType::DataRead),
            Translation::TlbHit { .. }
        ));
        m.segments.set(0, Vsid::new(0x200)); // new address-space generation
        assert!(matches!(
            m.translate(ea, AccessType::DataRead),
            Translation::TlbMiss { .. }
        ));
        assert_eq!(
            m.dtlb.valid_entries(),
            1,
            "stale entry still resident (zombie)"
        );
    }

    #[test]
    fn write_accesses_use_dtlb() {
        let mut m = mmu();
        let ea = EffectiveAddress(0x0000_3000);
        assert!(matches!(
            m.translate(ea, AccessType::DataWrite),
            Translation::TlbMiss { .. }
        ));
        assert_eq!(m.dtlb.stats().misses, 1);
        assert_eq!(m.itlb.stats().lookups, 0);
    }
}
