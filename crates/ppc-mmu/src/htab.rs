//! The in-memory hashed page table (htab).

use crate::addr::{PhysAddr, Vsid};
use crate::hash::HashFunction;
use crate::pte::Pte;

/// Number of PTEs per PTE group (PTEG).
pub const PTES_PER_GROUP: usize = 8;

/// Which slot the reload code displaces when both candidate PTEGs are full.
///
/// The paper (§7) says the reload code "chose an arbitrary PTE to replace";
/// Linux/PPC used a rotating cursor. The alternatives quantify how much the
/// choice matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// A per-group rotating cursor (Linux/PPC's choice).
    #[default]
    RoundRobin,
    /// A pseudo-random slot (deterministic xorshift).
    Random,
    /// Always slot 0 — the pathological baseline.
    FirstSlot,
}

/// Bytes per architected PTE.
pub const PTE_BYTES: u32 = 8;

/// Statistics for the hash table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HtabStats {
    /// Lookups performed.
    pub searches: u64,
    /// Lookups satisfied from the primary PTEG.
    pub found_primary: u64,
    /// Lookups satisfied from the secondary PTEG.
    pub found_secondary: u64,
    /// Lookups that missed both PTEGs.
    pub misses: u64,
    /// Individual PTE slots probed (each is one memory reference).
    pub probes: u64,
    /// PTEs inserted.
    pub inserts: u64,
    /// Inserts that found an empty (invalid) slot.
    pub inserts_into_empty: u64,
    /// Inserts that displaced a slot whose valid bit was set.
    pub evictions: u64,
    /// Inserts that found *both* candidate PTEGs completely full (the
    /// overflow condition: sixteen probes, then a forced displacement).
    pub overflows: u64,
    /// Explicit invalidations of single entries.
    pub invalidates: u64,
    /// Zombie entries physically invalidated by the idle-task reclaim scan.
    pub zombies_reclaimed: u64,
}

impl HtabStats {
    /// Hit rate of searches, in `[0, 1]`; `1.0` with no searches.
    pub fn hit_rate(&self) -> f64 {
        if self.searches == 0 {
            1.0
        } else {
            (self.found_primary + self.found_secondary) as f64 / self.searches as f64
        }
    }

    /// The paper's §7 "ratio of hash table reloads to evicts": fraction of
    /// inserts that had to displace a valid entry.
    pub fn evict_ratio(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.evictions as f64 / self.inserts as f64
        }
    }
}

/// Result of a hash-table search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// The matching entry, if found.
    pub pte: Option<Pte>,
    /// Location `(group, slot)` of the match.
    pub location: Option<(u32, usize)>,
    /// Number of PTE slots read while searching (memory references).
    pub probes: u32,
}

/// Result of a hash-table insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Where the entry landed `(group, slot)`.
    pub location: (u32, usize),
    /// The entry that was displaced, if its valid bit was set. The caller
    /// (which knows which VSIDs are live) classifies it as a real eviction or
    /// a zombie replacement.
    pub displaced: Option<Pte>,
    /// Whether the new entry went in via the secondary hash.
    pub secondary: bool,
    /// Number of PTE slots read while looking for a free slot.
    pub probes: u32,
    /// Whether both candidate PTEGs were completely full, forcing a
    /// displacement (the hash-table overflow condition). When set,
    /// `displaced` is always `Some`.
    pub overflow: bool,
}

/// Result of a [`HashTable::resize_with`] rehash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizeOutcome {
    /// Group count before the rehash.
    pub old_groups: u32,
    /// Group count after the rehash.
    pub new_groups: u32,
    /// Old-table slots read while scanning (each is one memory reference).
    pub slots_scanned: u32,
    /// Valid entries reinserted under the new hash function.
    pub moved: u32,
    /// Valid entries dropped because both candidate PTEGs in the new table
    /// were already full. Safe: the table is a cache of the Linux page
    /// tables, so a dropped translation simply reloads on its next touch.
    pub dropped: u32,
    /// New-table slots probed or written while reinserting.
    pub reinsert_probes: u32,
}

/// The architected hashed page table: `num_groups` PTEGs of eight entries,
/// resident at `base_pa` in simulated physical memory.
///
/// The table does not know which VSIDs are live — exactly like the hardware.
/// Zombie entries (valid bit set, VSID retired by the lazy-flush scheme of
/// paper §7) look identical to live ones until the idle task's
/// [`HashTable::reclaim_zombies`] scan clears them.
///
/// # Examples
///
/// ```
/// use ppc_mmu::{HashTable, Pte, addr::Vsid};
///
/// let mut htab = HashTable::new(2048, 0x10_0000);
/// let mut pte = Pte::invalid();
/// pte.valid = true;
/// pte.vsid = Vsid::new(42);
/// pte.page_index = 7;
/// pte.rpn = 0x123;
/// htab.insert(pte);
/// let found = htab.search(Vsid::new(42), 7);
/// assert_eq!(found.pte.unwrap().rpn, 0x123);
/// ```
#[derive(Debug, Clone)]
pub struct HashTable {
    hash: HashFunction,
    groups: Vec<[Pte; PTES_PER_GROUP]>,
    base_pa: PhysAddr,
    /// Per-group round-robin eviction cursors (like Linux/PPC's next-slot).
    rr: Vec<u8>,
    stats: HtabStats,
    /// Cursor for the incremental idle-task reclaim scan.
    reclaim_cursor: u32,
    /// Replacement policy for full-group inserts.
    replacement: Replacement,
    /// Xorshift state for [`Replacement::Random`].
    rng_state: u32,
}

impl HashTable {
    /// Creates an empty table of `num_groups` PTEGs based at `base_pa`.
    ///
    /// The paper's machines use 16384 PTEs = 2048 groups (§7: "600–700 out
    /// of 16384").
    ///
    /// # Panics
    ///
    /// Panics if `num_groups` is not a power of two.
    pub fn new(num_groups: u32, base_pa: PhysAddr) -> Self {
        Self {
            hash: HashFunction::new(num_groups),
            groups: vec![[Pte::invalid(); PTES_PER_GROUP]; num_groups as usize],
            base_pa,
            rr: vec![0; num_groups as usize],
            stats: HtabStats::default(),
            reclaim_cursor: 0,
            replacement: Replacement::RoundRobin,
            rng_state: 0x2545_f491,
        }
    }

    /// Selects the replacement policy for full-group inserts.
    pub fn set_replacement(&mut self, policy: Replacement) {
        self.replacement = policy;
    }

    /// The hash function in use.
    pub fn hash(&self) -> HashFunction {
        self.hash
    }

    /// Total PTE capacity.
    pub fn capacity(&self) -> u32 {
        self.hash.num_groups() * PTES_PER_GROUP as u32
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HtabStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = HtabStats::default();
    }

    /// Physical address of slot `(group, slot)`, for cache-traffic modelling.
    pub fn slot_pa(&self, group: u32, slot: usize) -> PhysAddr {
        self.base_pa + (group * PTES_PER_GROUP as u32 + slot as u32) * PTE_BYTES
    }

    /// Searches for `(vsid, page_index)`: primary PTEG first, then secondary,
    /// probing slots in order exactly as the 604's hardware walker does.
    /// `visit` is called with the physical address of every slot probed so
    /// the caller can charge cache/bus traffic.
    pub fn search_with(
        &mut self,
        vsid: Vsid,
        page_index: u32,
        mut visit: impl FnMut(PhysAddr),
    ) -> SearchOutcome {
        let _host = crate::host::span(crate::host::PHASE_TRANSLATE);
        self.stats.searches += 1;
        let mut probes = 0u32;
        for secondary in [false, true] {
            let g = self.hash.pteg_index(vsid, page_index, secondary);
            for (slot, pte) in self.groups[g as usize].iter().enumerate() {
                probes += 1;
                visit(self.slot_pa(g, slot));
                if pte.matches(vsid, page_index, secondary) {
                    self.stats.probes += probes as u64;
                    if secondary {
                        self.stats.found_secondary += 1;
                    } else {
                        self.stats.found_primary += 1;
                    }
                    return SearchOutcome {
                        pte: Some(*pte),
                        location: Some((g, slot)),
                        probes,
                    };
                }
            }
        }
        self.stats.probes += probes as u64;
        self.stats.misses += 1;
        SearchOutcome {
            pte: None,
            location: None,
            probes,
        }
    }

    /// [`HashTable::search_with`] without the probe callback.
    pub fn search(&mut self, vsid: Vsid, page_index: u32) -> SearchOutcome {
        self.search_with(vsid, page_index, |_| {})
    }

    /// Inserts `pte`, preferring an empty slot in the primary PTEG, then the
    /// secondary PTEG, then round-robin displacement in the primary group
    /// (the paper's §7 policy: the reload code "replace\[s\] an entry when
    /// needed, not checking if it has a currently valid VSID or not").
    /// `visit` receives the address of every slot examined plus the slot
    /// written.
    pub fn insert_with(&mut self, mut pte: Pte, mut visit: impl FnMut(PhysAddr)) -> InsertOutcome {
        let _host = crate::host::span(crate::host::PHASE_TRANSLATE);
        self.stats.inserts += 1;
        pte.valid = true;
        let mut probes = 0u32;
        for secondary in [false, true] {
            let g = self.hash.pteg_index(pte.vsid, pte.page_index, secondary);
            for slot in 0..PTES_PER_GROUP {
                probes += 1;
                visit(self.slot_pa(g, slot));
                if !self.groups[g as usize][slot].valid {
                    pte.secondary = secondary;
                    self.groups[g as usize][slot] = pte;
                    visit(self.slot_pa(g, slot));
                    self.stats.inserts_into_empty += 1;
                    return InsertOutcome {
                        location: (g, slot),
                        displaced: None,
                        secondary,
                        probes,
                        overflow: false,
                    };
                }
            }
        }
        // Both groups full: displace per the configured policy in the
        // primary group.
        let g = self.hash.pteg_index(pte.vsid, pte.page_index, false);
        let slot = match self.replacement {
            Replacement::RoundRobin => {
                let s = self.rr[g as usize] as usize % PTES_PER_GROUP;
                self.rr[g as usize] = self.rr[g as usize].wrapping_add(1);
                s
            }
            Replacement::Random => {
                // Xorshift32: deterministic, well-spread.
                let mut x = self.rng_state;
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                self.rng_state = x;
                (x as usize) % PTES_PER_GROUP
            }
            Replacement::FirstSlot => 0,
        };
        let displaced = self.groups[g as usize][slot];
        pte.secondary = false;
        self.groups[g as usize][slot] = pte;
        visit(self.slot_pa(g, slot));
        self.stats.evictions += 1;
        self.stats.overflows += 1;
        InsertOutcome {
            location: (g, slot),
            displaced: Some(displaced),
            secondary: false,
            probes,
            overflow: true,
        }
    }

    /// [`HashTable::insert_with`] without the probe callback.
    pub fn insert(&mut self, pte: Pte) -> InsertOutcome {
        self.insert_with(pte, |_| {})
    }

    /// Invalidates the entry for `(vsid, page_index)` if present, searching
    /// both PTEGs (up to 16 memory references — the §7 flush cost). Returns
    /// the probe count and whether an entry was cleared.
    pub fn invalidate_with(
        &mut self,
        vsid: Vsid,
        page_index: u32,
        visit: impl FnMut(PhysAddr),
    ) -> (u32, bool) {
        let found = self.search_with(vsid, page_index, visit);
        if let Some((g, slot)) = found.location {
            self.groups[g as usize][slot].valid = false;
            self.stats.invalidates += 1;
            (found.probes, true)
        } else {
            (found.probes, false)
        }
    }

    /// [`HashTable::invalidate_with`] without the probe callback.
    pub fn invalidate(&mut self, vsid: Vsid, page_index: u32) -> (u32, bool) {
        self.invalidate_with(vsid, page_index, |_| {})
    }

    /// Scans up to `max_groups` PTEGs from the rotating reclaim cursor and
    /// clears the valid bit of every entry whose VSID `is_live` rejects.
    /// This is the paper's headline trick (§7): "setting the idle task to
    /// reclaim zombie hash table entries by scanning the hash table when the
    /// cpu is idle". Returns `(slots_scanned, zombies_cleared)`.
    pub fn reclaim_zombies(
        &mut self,
        max_groups: u32,
        mut is_live: impl FnMut(Vsid) -> bool,
    ) -> (u32, u32) {
        let n = self.hash.num_groups();
        let max_groups = max_groups.min(n);
        let mut scanned = 0;
        let mut cleared = 0;
        for _ in 0..max_groups {
            let g = self.reclaim_cursor as usize;
            self.reclaim_cursor = (self.reclaim_cursor + 1) % n;
            for pte in &mut self.groups[g] {
                scanned += 1;
                if pte.valid && !is_live(pte.vsid) {
                    pte.valid = false;
                    cleared += 1;
                }
            }
        }
        self.stats.zombies_reclaimed += cleared as u64;
        (scanned, cleared)
    }

    /// Scans the whole table and invalidates every valid entry whose VSID
    /// satisfies `pred` — the *eager* context flush the lazy scheme replaces.
    /// Returns `(slots_scanned, entries_cleared)`.
    pub fn invalidate_matching(&mut self, mut pred: impl FnMut(Vsid) -> bool) -> (u32, u32) {
        let mut scanned = 0;
        let mut cleared = 0;
        for g in &mut self.groups {
            for pte in g {
                scanned += 1;
                if pte.valid && pred(pte.vsid) {
                    pte.valid = false;
                    cleared += 1;
                    self.stats.invalidates += 1;
                }
            }
        }
        (scanned, cleared)
    }

    /// The PTEG the next [`HashTable::reclaim_zombies`] call starts at.
    pub fn reclaim_cursor(&self) -> u32 {
        self.reclaim_cursor
    }

    /// Number of slots whose valid bit is set (live + zombie alike).
    pub fn valid_entries(&self) -> u32 {
        self.groups.iter().flatten().filter(|p| p.valid).count() as u32
    }

    /// Number of valid slots whose VSID `is_live` accepts.
    pub fn live_entries(&self, mut is_live: impl FnMut(Vsid) -> bool) -> u32 {
        self.groups
            .iter()
            .flatten()
            .filter(|p| p.valid && is_live(p.vsid))
            .count() as u32
    }

    /// Fraction of slots with the valid bit set, in `[0, 1]` — the paper's
    /// "hash table use".
    pub fn occupancy(&self) -> f64 {
        self.valid_entries() as f64 / self.capacity() as f64
    }

    /// Per-PTEG count of valid entries — the §5.2 "hash table miss
    /// histogram" used to spot hot-spots while tuning the VSID scatter
    /// constant.
    pub fn group_histogram(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.group_histogram_into(&mut out);
        out
    }

    /// [`HashTable::group_histogram`] into a caller-owned buffer, reusing
    /// its capacity. The consistency checker's heavy sweep runs this every
    /// epoch; with a reused scratch it allocates only when the table grows.
    pub fn group_histogram_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend(
            self.groups
                .iter()
                .map(|g| g.iter().filter(|p| p.valid).count() as u8),
        );
    }

    /// Every valid entry with its `(group, slot)` location, in table order.
    /// Read-only: does not touch statistics, cursors or replacement state,
    /// so a sweep over the entries is invisible to the table (the
    /// consistency checker depends on this).
    pub fn entries(&self) -> impl Iterator<Item = (u32, usize, Pte)> + '_ {
        self.groups.iter().enumerate().flat_map(|(g, group)| {
            group
                .iter()
                .enumerate()
                .filter(|(_, p)| p.valid)
                .map(move |(s, p)| (g as u32, s, *p))
        })
    }

    /// Number of completely full PTEGs (inserts there must evict).
    pub fn full_groups(&self) -> u32 {
        self.groups
            .iter()
            .filter(|g| g.iter().all(|p| p.valid))
            .count() as u32
    }

    /// Rehashes the table into `new_groups` PTEGs at the same base address,
    /// carrying every valid entry (live and zombie alike — the table cannot
    /// tell them apart) across to its slot under the new hash function.
    ///
    /// `visit` receives the physical address of every old slot scanned and
    /// every new slot probed or written, so the caller can charge the rehash
    /// honestly — exactly like [`HashTable::insert_with`]. The [`HtabStats`]
    /// counters are deliberately **not** touched: they keep meaning
    /// "workload-induced traffic", and the retune cost is the caller's to
    /// account. The reclaim cursor resets (old group indices are
    /// meaningless); the replacement policy and RNG state carry over.
    ///
    /// # Panics
    ///
    /// Panics if `new_groups` is not a power of two.
    pub fn resize_with(
        &mut self,
        new_groups: u32,
        mut visit: impl FnMut(PhysAddr),
    ) -> ResizeOutcome {
        let _host = crate::host::span(crate::host::PHASE_TRANSLATE);
        let old_groups = self.hash.num_groups();
        let old = std::mem::replace(
            &mut self.groups,
            vec![[Pte::invalid(); PTES_PER_GROUP]; new_groups as usize],
        );
        self.hash = HashFunction::new(new_groups);
        self.rr = vec![0; new_groups as usize];
        self.reclaim_cursor = 0;
        let mut out = ResizeOutcome {
            old_groups,
            new_groups,
            slots_scanned: 0,
            moved: 0,
            dropped: 0,
            reinsert_probes: 0,
        };
        // Old slot addresses still follow the slot_pa formula: the table
        // stays at base_pa, the old image just spanned more (or fewer) bytes.
        for (g, group) in old.iter().enumerate() {
            for (s, pte) in group.iter().enumerate() {
                out.slots_scanned += 1;
                visit(self.base_pa + (g as u32 * PTES_PER_GROUP as u32 + s as u32) * PTE_BYTES);
                if !pte.valid {
                    continue;
                }
                // Raw reinsert: empty primary slot, then empty secondary
                // slot, else drop. No displacement — a rehash must not evict
                // entries it has already placed.
                let mut pte = *pte;
                let mut placed = false;
                'probe: for secondary in [false, true] {
                    let ng = self.hash.pteg_index(pte.vsid, pte.page_index, secondary);
                    for slot in 0..PTES_PER_GROUP {
                        out.reinsert_probes += 1;
                        visit(self.slot_pa(ng, slot));
                        if !self.groups[ng as usize][slot].valid {
                            pte.secondary = secondary;
                            self.groups[ng as usize][slot] = pte;
                            visit(self.slot_pa(ng, slot));
                            placed = true;
                            break 'probe;
                        }
                    }
                }
                if placed {
                    out.moved += 1;
                } else {
                    out.dropped += 1;
                }
            }
        }
        out
    }

    /// [`HashTable::resize_with`] without the probe callback.
    pub fn resize(&mut self, new_groups: u32) -> ResizeOutcome {
        self.resize_with(new_groups, |_| {})
    }

    /// Clears the whole table (used at boot and by tests).
    pub fn clear(&mut self) {
        for g in &mut self.groups {
            *g = [Pte::invalid(); PTES_PER_GROUP];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pte(vsid: u32, pi: u32) -> Pte {
        Pte {
            valid: true,
            vsid: Vsid::new(vsid),
            secondary: false,
            page_index: pi,
            rpn: 0x100 + pi,
            referenced: false,
            changed: false,
            cache_inhibited: false,
            pp: 2,
        }
    }

    #[test]
    fn insert_then_search_finds_it() {
        let mut h = HashTable::new(256, 0);
        h.insert(pte(5, 0x123));
        let out = h.search(Vsid::new(5), 0x123);
        assert_eq!(out.pte.unwrap().rpn, 0x100 + 0x123);
        assert_eq!(h.stats().found_primary, 1);
    }

    #[test]
    fn miss_probes_both_groups() {
        let mut h = HashTable::new(256, 0);
        let out = h.search(Vsid::new(1), 1);
        assert!(out.pte.is_none());
        assert_eq!(
            out.probes, 16,
            "full search is 16 memory references (paper §7)"
        );
    }

    #[test]
    fn overflow_to_secondary_group() {
        let mut h = HashTable::new(256, 0);
        // Nine pages that share a primary PTEG: same vsid, page indexes that
        // hash identically. hash = vsid_low ^ pi, so pick pi values equal
        // modulo the group mask (256 groups -> low 8 bits).
        let vsid = 3;
        for k in 0..9 {
            h.insert(pte(vsid, 0x42 + (k << 8)));
        }
        // All nine must still be findable; at least one via secondary hash.
        let mut secondary_found = 0;
        for k in 0..9 {
            let out = h.search(Vsid::new(vsid), 0x42 + (k << 8));
            let found = out.pte.expect("entry must be resident");
            if found.secondary {
                secondary_found += 1;
            }
        }
        assert_eq!(secondary_found, 1);
        assert_eq!(h.stats().found_secondary, 1);
        assert_eq!(h.stats().evictions, 0);
    }

    #[test]
    fn eviction_when_both_groups_full() {
        let mut h = HashTable::new(256, 0);
        let vsid = 3;
        // Fill primary (8) + secondary (8), then one more forces eviction.
        for k in 0..17 {
            h.insert(pte(vsid, 0x42 + (k << 8)));
        }
        assert_eq!(h.stats().evictions, 1);
        let last = h.search(Vsid::new(vsid), 0x42 + (16 << 8));
        assert!(
            last.pte.is_some(),
            "newest entry must be resident after eviction"
        );
    }

    #[test]
    fn round_robin_eviction_cycles_slots() {
        let mut h = HashTable::new(256, 0);
        let vsid = 3;
        for k in 0..16 {
            h.insert(pte(vsid, 0x42 + (k << 8)));
        }
        let mut displaced = std::collections::HashSet::new();
        for k in 16..24 {
            let out = h.insert(pte(vsid, 0x42 + (k << 8)));
            displaced.insert(out.location.1);
        }
        assert_eq!(displaced.len(), 8, "RR eviction must touch every slot once");
    }

    #[test]
    fn invalidate_clears_and_costs_probes() {
        let mut h = HashTable::new(256, 0);
        h.insert(pte(9, 0x55));
        let (_, cleared) = h.invalidate(Vsid::new(9), 0x55);
        assert!(cleared);
        assert!(h.search(Vsid::new(9), 0x55).pte.is_none());
        let (probes, cleared) = h.invalidate(Vsid::new(9), 0x55);
        assert!(!cleared);
        assert_eq!(probes, 16);
    }

    #[test]
    fn zombie_reclaim_clears_only_dead_vsids() {
        let mut h = HashTable::new(256, 0);
        for pi in 0..50 {
            h.insert(pte(1, pi)); // live
            h.insert(pte(2, pi)); // zombie-to-be
        }
        let before = h.valid_entries();
        assert_eq!(before, 100);
        let (_, cleared) = h.reclaim_zombies(256, |v| v == Vsid::new(1));
        assert_eq!(cleared, 50);
        assert_eq!(h.valid_entries(), 50);
        assert_eq!(h.live_entries(|v| v == Vsid::new(1)), 50);
        // Every surviving entry is VSID 1.
        for pi in 0..50 {
            assert!(h.search(Vsid::new(1), pi).pte.is_some());
            assert!(h.search(Vsid::new(2), pi).pte.is_none());
        }
    }

    #[test]
    fn reclaim_cursor_is_incremental() {
        let mut h = HashTable::new(256, 0);
        for pi in 0..2048 {
            h.insert(pte(2, pi * 7));
        }
        let total_zombies = h.valid_entries();
        let (scanned, c1) = h.reclaim_zombies(128, |_| false);
        assert_eq!(scanned, 128 * 8);
        let (_, c2) = h.reclaim_zombies(128, |_| false);
        assert_eq!(
            c1 + c2,
            total_zombies,
            "two half-scans cover the whole table"
        );
    }

    #[test]
    fn occupancy_and_histogram() {
        let mut h = HashTable::new(256, 0);
        assert_eq!(h.occupancy(), 0.0);
        for pi in 0..256 {
            h.insert(pte(1, pi));
        }
        let hist = h.group_histogram();
        assert_eq!(hist.len(), 256);
        assert_eq!(
            hist.iter().map(|&c| c as u32).sum::<u32>(),
            h.valid_entries()
        );
        assert!((h.occupancy() - 256.0 / 2048.0).abs() < 1e-9);
    }

    #[test]
    fn slot_pa_is_contiguous() {
        let h = HashTable::new(256, 0x8_0000);
        assert_eq!(h.slot_pa(0, 0), 0x8_0000);
        assert_eq!(h.slot_pa(0, 1), 0x8_0008);
        assert_eq!(h.slot_pa(1, 0), 0x8_0040);
    }

    #[test]
    fn hit_rate_and_evict_ratio() {
        let mut h = HashTable::new(256, 0);
        h.insert(pte(1, 1));
        h.search(Vsid::new(1), 1);
        h.search(Vsid::new(1), 2);
        assert!((h.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(h.stats().evict_ratio(), 0.0);
    }

    #[test]
    fn clear_empties_table() {
        let mut h = HashTable::new(256, 0);
        for pi in 0..32 {
            h.insert(pte(1, pi));
        }
        h.clear();
        assert_eq!(h.valid_entries(), 0);
    }

    #[test]
    fn resize_grow_keeps_every_entry_findable() {
        let mut h = HashTable::new(64, 0x10_0000);
        for pi in 0..200 {
            h.insert(pte(1, pi * 3));
        }
        let valid_before = h.valid_entries();
        let stats_before = *h.stats();
        let out = h.resize(256);
        assert_eq!(out.old_groups, 64);
        assert_eq!(out.new_groups, 256);
        assert_eq!(out.slots_scanned, 64 * 8);
        assert_eq!(out.moved, valid_before);
        assert_eq!(out.dropped, 0, "growing must never drop entries");
        assert_eq!(h.valid_entries(), valid_before);
        assert_eq!(
            *h.stats(),
            stats_before,
            "resize must not pollute workload stats"
        );
        assert_eq!(h.reclaim_cursor(), 0);
        for pi in 0..200 {
            assert!(
                h.search(Vsid::new(1), pi * 3).pte.is_some(),
                "entry {pi} lost in rehash"
            );
        }
    }

    #[test]
    fn resize_shrink_drops_only_on_double_full() {
        let mut h = HashTable::new(256, 0);
        for pi in 0..600 {
            h.insert(pte(1, pi));
        }
        let valid_before = h.valid_entries();
        // 16 groups = 128 slots < 600 entries: drops are forced and counted.
        let out = h.resize(16);
        assert_eq!(out.moved + out.dropped, valid_before);
        assert!(out.dropped > 0);
        assert_eq!(h.valid_entries(), out.moved);
        assert!(h.valid_entries() <= 16 * 8);
    }

    #[test]
    fn resize_visit_covers_scan_and_reinsert_traffic() {
        let mut h = HashTable::new(64, 0x10_0000);
        for pi in 0..40 {
            h.insert(pte(1, pi));
        }
        let mut reads = 0u32;
        let out = h.resize_with(128, |_| reads += 1);
        // Every scanned slot, every reinsert probe, and one write per move.
        assert_eq!(reads, out.slots_scanned + out.reinsert_probes + out.moved);
    }

    #[test]
    fn resize_is_deterministic() {
        let build = || {
            let mut h = HashTable::new(128, 0);
            for pi in 0..300 {
                h.insert(pte(2, pi * 5));
            }
            h.resize(32);
            h.resize(64);
            h
        };
        let a = build();
        let b = build();
        assert_eq!(a.group_histogram(), b.group_histogram());
        assert_eq!(a.valid_entries(), b.valid_entries());
    }

    #[test]
    #[should_panic]
    fn resize_rejects_non_power_of_two() {
        let mut h = HashTable::new(64, 0);
        h.resize(96);
    }

    #[test]
    fn search_visit_reports_slot_addresses() {
        let mut h = HashTable::new(256, 0x10_0000);
        let mut addrs = Vec::new();
        h.search_with(Vsid::new(7), 0x31, |pa| addrs.push(pa));
        assert_eq!(addrs.len(), 16);
        // The first eight probes are consecutive slots of one PTEG.
        for w in addrs[..8].windows(2) {
            assert_eq!(w[1] - w[0], PTE_BYTES);
        }
        assert!(addrs.iter().all(|&a| a >= 0x10_0000));
    }
}
