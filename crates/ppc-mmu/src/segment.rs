//! The sixteen segment registers.

use crate::addr::{EffectiveAddress, VirtualAddress, Vsid};

/// The sixteen segment registers of the 32-bit PowerPC MMU.
///
/// Each register maps one 256 MiB slice of the effective address space to a
/// 24-bit VSID. Switching a process's address space is a matter of reloading
/// these registers (the mechanism behind the paper's lazy TLB flushes, §7:
/// "when the kernel switched to a task its VSIDs could be loaded from the
/// task structure into hardware registers by software").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRegisters {
    srs: [Vsid; 16],
    /// Count of segment-register reloads, for cost accounting.
    pub reload_count: u64,
}

impl Default for SegmentRegisters {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentRegisters {
    /// Creates segment registers all holding VSID 0.
    pub fn new() -> Self {
        Self {
            srs: [Vsid::new(0); 16],
            reload_count: 0,
        }
    }

    /// Reads segment register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn get(&self, index: usize) -> Vsid {
        self.srs[index]
    }

    /// Writes segment register `index` (one `mtsr`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn set(&mut self, index: usize, vsid: Vsid) {
        self.srs[index] = vsid;
        self.reload_count += 1;
    }

    /// Reloads all sixteen registers, as a context switch does.
    pub fn load_all(&mut self, vsids: &[Vsid; 16]) {
        for (i, v) in vsids.iter().enumerate() {
            self.srs[i] = *v;
        }
        self.reload_count += 16;
    }

    /// Translates an effective address to a virtual address by substituting
    /// the selected VSID for the top 4 bits.
    pub fn translate(&self, ea: EffectiveAddress) -> VirtualAddress {
        VirtualAddress {
            vsid: self.srs[ea.sr_index()],
            page_index: ea.page_index(),
            offset: ea.offset(),
        }
    }

    /// A snapshot of all sixteen VSIDs.
    pub fn snapshot(&self) -> [Vsid; 16] {
        self.srs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_uses_selected_register() {
        let mut s = SegmentRegisters::new();
        s.set(0xc, Vsid::new(0x42));
        let va = s.translate(EffectiveAddress(0xc000_5678));
        assert_eq!(va.vsid, Vsid::new(0x42));
        assert_eq!(va.page_index, 0x0005);
        assert_eq!(va.offset, 0x678);
    }

    #[test]
    fn load_all_counts_sixteen_reloads() {
        let mut s = SegmentRegisters::new();
        let vsids = [Vsid::new(7); 16];
        s.load_all(&vsids);
        assert_eq!(s.reload_count, 16);
        assert_eq!(s.snapshot(), vsids);
    }

    #[test]
    fn distinct_segments_are_independent() {
        let mut s = SegmentRegisters::new();
        s.set(0, Vsid::new(1));
        s.set(15, Vsid::new(2));
        assert_eq!(s.get(0), Vsid::new(1));
        assert_eq!(s.get(1), Vsid::new(0));
        assert_eq!(s.get(15), Vsid::new(2));
    }
}
