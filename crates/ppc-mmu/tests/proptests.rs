//! Property-based tests for the MMU hardware model.

use proptest::prelude::*;

use ppc_mmu::addr::{EffectiveAddress, Vsid};
use ppc_mmu::bat::BatEntry;
use ppc_mmu::hash::HashFunction;
use ppc_mmu::htab::HashTable;
use ppc_mmu::pte::Pte;
use ppc_mmu::tlb::{Tlb, TlbConfig, TlbEntry};

fn pte(vsid: u32, pi: u32, rpn: u32) -> Pte {
    Pte {
        valid: true,
        vsid: Vsid::new(vsid),
        secondary: false,
        page_index: pi & 0xffff,
        rpn: rpn & 0xfffff,
        referenced: false,
        changed: false,
        cache_inhibited: false,
        pp: 2,
    }
}

proptest! {
    /// The hash always addresses a valid group, and the secondary group
    /// never equals the primary.
    #[test]
    fn hash_indexes_in_range(vsid in 0u32..0x100_0000, pi in 0u32..0x1_0000,
                             shift in 6u32..12) {
        let groups = 1 << shift;
        let h = HashFunction::new(groups);
        let p = h.pteg_index(Vsid::new(vsid), pi, false);
        let s = h.pteg_index(Vsid::new(vsid), pi, true);
        prop_assert!(p < groups);
        prop_assert!(s < groups);
        prop_assert_ne!(p, s);
    }

    /// An inserted PTE is always findable, with the RPN it was inserted
    /// with, until something displaces it.
    #[test]
    fn htab_insert_then_search(vsid in 0u32..0x100_0000, pi in 0u32..0x1_0000,
                               rpn in 0u32..0x10_0000) {
        let mut h = HashTable::new(256, 0);
        h.insert(pte(vsid, pi, rpn));
        let out = h.search(Vsid::new(vsid), pi);
        let found = out.pte.expect("just-inserted entry must be found");
        prop_assert_eq!(found.rpn, rpn & 0xfffff);
    }

    /// A search never returns an entry with a different key.
    #[test]
    fn htab_no_false_match(entries in proptest::collection::vec(
        (0u32..64, 0u32..0x1000, 1u32..0x10_0000), 1..40)) {
        let mut h = HashTable::new(256, 0);
        let mut keys = std::collections::HashSet::new();
        for &(v, p, r) in &entries {
            h.insert(pte(v, p, r));
            keys.insert((v & 0xff_ffff, p & 0xffff));
        }
        // Probe keys that were never inserted.
        for probe_v in 64u32..80 {
            for probe_p in [0u32, 1, 0x7ff, 0xffff] {
                if !keys.contains(&(probe_v, probe_p)) {
                    let out = h.search(Vsid::new(probe_v), probe_p);
                    prop_assert!(out.pte.is_none(),
                        "spurious match for ({probe_v}, {probe_p:#x})");
                }
            }
        }
    }

    /// Every insert that reports a displaced valid entry happened with both
    /// candidate groups full, and occupancy never exceeds capacity.
    #[test]
    fn htab_occupancy_bounded(entries in proptest::collection::vec(
        (0u32..0x1000, 0u32..0x1_0000), 1..600)) {
        let mut h = HashTable::new(64, 0); // 512 slots, easy to overflow
        for &(v, p) in &entries {
            h.insert(pte(v, p, 7));
            prop_assert!(h.valid_entries() <= h.capacity());
        }
        let hist = h.group_histogram();
        prop_assert!(hist.iter().all(|&c| c <= 8));
        prop_assert_eq!(
            hist.iter().map(|&c| c as u32).sum::<u32>(),
            h.valid_entries()
        );
    }

    /// Reclaiming with an all-live predicate clears nothing; with a
    /// none-live predicate it clears everything (over a full sweep).
    #[test]
    fn htab_reclaim_respects_liveness(entries in proptest::collection::vec(
        (0u32..0x1000, 0u32..0x1_0000), 1..100)) {
        let mut h = HashTable::new(256, 0);
        for &(v, p) in &entries {
            h.insert(pte(v, p, 3));
        }
        let valid = h.valid_entries();
        let (_, cleared) = h.reclaim_zombies(256, |_| true);
        prop_assert_eq!(cleared, 0, "live entries must survive");
        prop_assert_eq!(h.valid_entries(), valid);
        let (_, cleared) = h.reclaim_zombies(256, |_| false);
        prop_assert_eq!(cleared, valid, "every zombie must be reclaimed");
        prop_assert_eq!(h.valid_entries(), 0);
    }

    /// The TLB returns exactly what was inserted, and never an entry for a
    /// different VSID.
    #[test]
    fn tlb_round_trip(vsid in 0u32..0x100_0000, pi in 0u32..0x1_0000,
                      rpn in 0u32..0x10_0000, other in 0u32..0x100_0000) {
        let mut t = Tlb::new(TlbConfig::ppc604_side());
        t.insert(TlbEntry { vsid: Vsid::new(vsid), page_index: pi, rpn, cached: true, writable: true });
        let e = t.lookup(Vsid::new(vsid), pi).expect("inserted entry must hit");
        prop_assert_eq!(e.rpn, rpn);
        if other != vsid {
            prop_assert!(t.lookup(Vsid::new(other), pi).is_none());
        }
    }

    /// `tlbie` empties exactly the targeted congruence class.
    #[test]
    fn tlbie_clears_class(pis in proptest::collection::vec(0u32..0x1_0000, 1..80),
                          victim in 0u32..0x1_0000) {
        let mut t = Tlb::new(TlbConfig::ppc603_side());
        for &pi in &pis {
            t.insert(TlbEntry { vsid: Vsid::new(1), page_index: pi, rpn: pi, cached: true, writable: true });
        }
        t.tlbie(victim);
        let sets = TlbConfig::ppc603_side().sets();
        for &pi in &pis {
            if pi % sets == victim % sets {
                prop_assert!(t.lookup(Vsid::new(1), pi).is_none(),
                    "class member {pi:#x} must be invalidated");
            }
        }
    }

    /// PTE architected encoding round-trips every field the format keeps.
    #[test]
    fn pte_encode_decode(vsid in 0u32..0x100_0000, api in 0u32..64,
                         rpn in 0u32..0x10_0000, bits in 0u8..32) {
        let p = Pte {
            valid: bits & 1 != 0,
            vsid: Vsid::new(vsid),
            secondary: bits & 2 != 0,
            page_index: api << 10, // decode only recovers the API bits
            rpn,
            referenced: bits & 4 != 0,
            changed: bits & 8 != 0,
            cache_inhibited: bits & 16 != 0,
            pp: 2,
        };
        let (w0, w1) = p.encode();
        prop_assert_eq!(Pte::decode(w0, w1), p);
    }

    /// A BAT hit preserves the in-block offset and never fires outside its
    /// block.
    #[test]
    fn bat_translation(block_log in 17u32..24, in_off in 0u32..0x2_0000,
                       out_off in 1u32..0x1000) {
        let len = 1u32 << block_log;
        let ea_base = 0x4000_0000u32;
        let pa_base = 0x0100_0000u32 & !(len - 1);
        let b = BatEntry::new(ea_base & !(len - 1), pa_base, len, true);
        let inside = (ea_base & !(len - 1)) + (in_off % len);
        let (pa, _) = b.translate(EffectiveAddress(inside)).expect("inside block");
        prop_assert_eq!(pa - pa_base, inside - (ea_base & !(len - 1)));
        let outside = (ea_base & !(len - 1)).wrapping_add(len).wrapping_add(out_off);
        prop_assert!(b.translate(EffectiveAddress(outside)).is_none());
    }
}
