//! Latency benchmarks: null syscall, context switch, pipe latency, mmap
//! latency, process start.

use kernel_sim::sched::USER_BASE;
use kernel_sim::Kernel;
use ppc_mmu::addr::PAGE_SIZE;

use crate::access::WorkingSet;

/// Measured: one null syscall (`getpid()`), in microseconds.
pub fn null_syscall(k: &mut Kernel, iters: u32) -> f64 {
    let pid = k.spawn_process(4).expect("spawn");
    k.switch_to(pid);
    k.prefault(USER_BASE, 4).expect("benchmark workload is well-formed");
    // Warm up the syscall path (I-cache, kernel TLB entries).
    for _ in 0..16 {
        k.sys_null();
    }
    let start = k.machine.cycles;
    for _ in 0..iters {
        k.sys_null();
    }
    k.time_us(k.machine.cycles - start) / iters as f64
}

/// Measured: one hop of LmBench's `lat_ctx` token ring — a context switch
/// plus the token pass — in microseconds. `nprocs` processes each touch
/// `ws_pages` pages of private data between passes (0 = pure switch).
pub fn ctx_switch(k: &mut Kernel, nprocs: u32, ws_pages: u32, rounds: u32) -> f64 {
    assert!(nprocs >= 2, "lat_ctx needs at least two processes");
    let pids: Vec<_> = (0..nprocs)
        .map(|_| k.spawn_process(ws_pages.max(1) + 4).expect("spawn"))
        .collect();
    let pipes: Vec<_> = (0..nprocs as usize)
        .map(|_| k.pipe_create().expect("benchmark workload is well-formed"))
        .collect();
    let mut sets: Vec<WorkingSet> = (0..nprocs)
        .map(|i| WorkingSet::new(USER_BASE, ws_pages.max(1), 100 + i as u64))
        .collect();
    // Fault everything in and warm one full ring round.
    for (i, &pid) in pids.iter().enumerate() {
        k.switch_to(pid);
        k.prefault(USER_BASE, ws_pages.max(1)).expect("benchmark workload is well-formed");
        let _ = i;
    }
    // Baseline: the same token-passing work in one process, no switching.
    // lmbench subtracts this overhead so `lat_ctx` reports the switch alone.
    let base_pipe = k.pipe_create().expect("benchmark workload is well-formed");
    k.switch_to(pids[0]);
    let mut base_ws = WorkingSet::new(USER_BASE, ws_pages.max(1), 99);
    let warm = 2;
    let mut baseline = 0u64;
    for round in 0..rounds + warm {
        let start = k.machine.cycles;
        for _ in 0..nprocs {
            k.pipe_write(base_pipe, USER_BASE, 1).expect("benchmark workload is well-formed");
            if ws_pages > 0 {
                base_ws.run(k, ws_pages * 2, 0.0, 1);
            }
            k.pipe_read(base_pipe, USER_BASE, 1).expect("benchmark workload is well-formed");
        }
        if round >= warm {
            baseline += k.machine.cycles - start;
        }
    }
    // Prime the token.
    k.switch_to(pids[0]);
    k.pipe_write(pipes[0], USER_BASE, 1).expect("benchmark workload is well-formed");
    let mut measured = 0u64;
    let mut hops = 0u64;
    for round in 0..rounds + warm {
        let start = k.machine.cycles;
        for i in 0..nprocs as usize {
            k.switch_to(pids[i]);
            k.pipe_read(pipes[i], USER_BASE, 1).expect("benchmark workload is well-formed");
            if ws_pages > 0 {
                // Touch the private working set (2 refs per page, as
                // lmbench's summing loop does).
                sets[i].run(k, ws_pages * 2, 0.0, 1);
            }
            k.pipe_write(pipes[(i + 1) % nprocs as usize], USER_BASE, 1).expect("benchmark workload is well-formed");
        }
        if round >= warm {
            measured += k.machine.cycles - start;
            hops += nprocs as u64;
        }
    }
    let per_hop = measured.saturating_sub(baseline).max(hops) / hops;
    k.time_us(per_hop * hops) / hops as f64
}

/// Measured: LmBench `lat_pipe` — half a byte-sized round trip between two
/// processes, in microseconds.
pub fn pipe_latency(k: &mut Kernel, rounds: u32) -> f64 {
    let a = k.spawn_process(4).expect("spawn");
    let b = k.spawn_process(4).expect("spawn");
    let p_ab = k.pipe_create().expect("benchmark workload is well-formed");
    let p_ba = k.pipe_create().expect("benchmark workload is well-formed");
    for &pid in &[a, b] {
        k.switch_to(pid);
        k.prefault(USER_BASE, 4).expect("benchmark workload is well-formed");
    }
    let warm = 4;
    let mut measured = 0u64;
    for round in 0..rounds + warm {
        let start = k.machine.cycles;
        k.switch_to(a);
        k.pipe_write(p_ab, USER_BASE, 1).expect("benchmark workload is well-formed");
        k.switch_to(b);
        k.pipe_read(p_ab, USER_BASE, 1).expect("benchmark workload is well-formed");
        k.pipe_write(p_ba, USER_BASE, 1).expect("benchmark workload is well-formed");
        k.switch_to(a);
        k.pipe_read(p_ba, USER_BASE, 1).expect("benchmark workload is well-formed");
        if round >= warm {
            measured += k.machine.cycles - start;
        }
    }
    // Half the round trip, as lmbench reports.
    k.time_us(measured) / rounds as f64 / 2.0
}

/// Size of the region `lat_mmap` maps and unmaps (16 MiB, the upper end of
/// LmBench's sweep — large enough that the §7 range-flush policy dominates).
pub const MMAP_BYTES: u32 = 16 * 1024 * 1024;

/// Measured: LmBench `lat_mmap` — one mmap+munmap of an [`MMAP_BYTES`]
/// file-backed region, in microseconds.
pub fn mmap_latency(k: &mut Kernel, iters: u32) -> f64 {
    mmap_latency_sized(k, iters, MMAP_BYTES)
}

/// [`mmap_latency`] at an explicit mapping size (for the §7 cutoff sweep).
pub fn mmap_latency_sized(k: &mut Kernel, iters: u32, bytes: u32) -> f64 {
    let pid = k.spawn_process(4).expect("spawn");
    k.switch_to(pid);
    k.prefault(USER_BASE, 4).expect("benchmark workload is well-formed");
    let file = k.create_file(bytes).expect("benchmark workload is well-formed");
    // Warm-up iteration.
    let addr = k.sys_mmap(Some(file), bytes);
    k.sys_munmap(addr, bytes);
    let start = k.machine.cycles;
    for _ in 0..iters {
        let addr = k.sys_mmap(Some(file), bytes);
        k.sys_munmap(addr, bytes);
    }
    k.time_us(k.machine.cycles - start) / iters as f64
}

/// Pages of "binary" a started process reads in (`lat_proc`-style exec).
pub const PSTART_TEXT_PAGES: u32 = 48;

/// Measured: process start — fork+exec-lite: create a process, load its
/// text from the page cache, touch its initial working set, exit — in
/// milliseconds.
pub fn process_start(k: &mut Kernel, iters: u32) -> f64 {
    let binary = k.create_file(PSTART_TEXT_PAGES * PAGE_SIZE).expect("benchmark workload is well-formed");
    let start = k.machine.cycles;
    for _ in 0..iters {
        let pid = k.spawn_process(PSTART_TEXT_PAGES + 8).expect("spawn");
        k.switch_to(pid);
        // exec: read the binary.
        k.sys_read(binary, 0, USER_BASE, PSTART_TEXT_PAGES * PAGE_SIZE).expect("benchmark workload is well-formed");
        // Dynamic linking: remap the address space (the §7 "when a
        // dynamically linked Linux process is started, the process must
        // remap its address space to incorporate shared libraries").
        let lib = k.sys_mmap(Some(binary), 24 * PAGE_SIZE);
        k.prefault(lib, 8).expect("benchmark workload is well-formed");
        k.sys_munmap(lib, 24 * PAGE_SIZE);
        // First instructions and stack.
        k.prefault(USER_BASE, 8).expect("benchmark workload is well-formed");
        k.exit_current();
    }
    k.time_us(k.machine.cycles - start) / iters as f64 / 1000.0
}

/// Measured: `lat_proc fork` — fork + child exit, in microseconds.
pub fn fork_latency(k: &mut Kernel, iters: u32) -> f64 {
    let pid = k.spawn_process(32).expect("spawn");
    k.switch_to(pid);
    k.prefault(USER_BASE, 32).expect("benchmark workload is well-formed");
    let parent = pid;
    // Warm one cycle.
    let child = k.sys_fork().expect("fork");
    k.switch_to(child);
    k.exit_current();
    k.switch_to(parent);
    let start = k.machine.cycles;
    for _ in 0..iters {
        let child = k.sys_fork().expect("fork");
        k.switch_to(child);
        k.exit_current();
        k.switch_to(parent);
    }
    k.time_us(k.machine.cycles - start) / iters as f64
}

/// Measured: `lat_proc exec` — fork + exec + first touches + exit, in
/// microseconds.
pub fn exec_latency(k: &mut Kernel, iters: u32) -> f64 {
    let pid = k.spawn_process(16).expect("spawn");
    k.switch_to(pid);
    k.prefault(USER_BASE, 16).expect("benchmark workload is well-formed");
    let parent = pid;
    let binary = k.create_file(24 * PAGE_SIZE).expect("benchmark workload is well-formed");
    let once = |k: &mut Kernel| {
        let child = k.sys_fork().expect("fork");
        k.switch_to(child);
        k.sys_exec(binary, 24, 8).expect("benchmark workload is well-formed");
        // First instructions, data, and stack of the new image.
        k.prefault(USER_BASE, 8).expect("benchmark workload is well-formed");
        k.user_write(USER_BASE + 24 * PAGE_SIZE, PAGE_SIZE).expect("benchmark workload is well-formed");
        k.exit_current();
        k.switch_to(parent);
    };
    once(k);
    let start = k.machine.cycles;
    for _ in 0..iters {
        once(k);
    }
    k.time_us(k.machine.cycles - start) / iters as f64
}

/// Measured: `lat_sig catch` — one signal delivery round trip, in
/// microseconds.
pub fn sig_catch(k: &mut Kernel, iters: u32) -> f64 {
    let pid = k.spawn_process(8).expect("spawn");
    k.switch_to(pid);
    k.prefault(USER_BASE, 4).expect("benchmark workload is well-formed");
    k.sys_signal_install();
    k.signal_roundtrip(USER_BASE).expect("benchmark workload is well-formed");
    let start = k.machine.cycles;
    for _ in 0..iters {
        k.signal_roundtrip(USER_BASE).expect("benchmark workload is well-formed");
    }
    k.time_us(k.machine.cycles - start) / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::KernelConfig;
    use ppc_machine::MachineConfig;

    fn kernel() -> Kernel {
        Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized())
    }

    #[test]
    fn fork_cheaper_than_exec() {
        let f = fork_latency(&mut kernel(), 5);
        let e = exec_latency(&mut kernel(), 5);
        assert!(f > 10.0, "fork {f:.0} µs should be substantial");
        assert!(
            e > f,
            "fork+exec ({e:.0} µs) must exceed fork alone ({f:.0} µs)"
        );
    }

    #[test]
    fn sig_catch_in_range() {
        let s = sig_catch(&mut kernel(), 20);
        assert!(s > 1.0 && s < 200.0, "lat_sig {s:.1} µs out of range");
    }

    #[test]
    fn optimized_fork_beats_unoptimized() {
        let mut opt = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
        let mut unopt = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::unoptimized());
        assert!(fork_latency(&mut opt, 5) < fork_latency(&mut unopt, 5));
    }

    #[test]
    fn null_syscall_is_microseconds() {
        let us = null_syscall(&mut kernel(), 50);
        assert!(us > 0.1 && us < 50.0, "null syscall {us} µs out of range");
    }

    #[test]
    fn ctx_switch_grows_with_working_set() {
        let small = ctx_switch(&mut kernel(), 2, 0, 20);
        let large = ctx_switch(&mut kernel(), 2, 32, 20);
        assert!(
            large > small,
            "ws=32p ({large} µs) must cost more than ws=0 ({small} µs)"
        );
    }

    #[test]
    fn pipe_latency_exceeds_half_ctx_switch() {
        let mut k = kernel();
        let lat = pipe_latency(&mut k, 20);
        assert!(
            lat > 0.5 && lat < 500.0,
            "pipe latency {lat} µs out of range"
        );
    }

    #[test]
    fn mmap_latency_positive() {
        let us = mmap_latency(&mut kernel(), 3);
        assert!(us > 1.0 && us < 100_000.0);
    }

    #[test]
    fn process_start_is_milliseconds() {
        let ms = process_start(&mut kernel(), 3);
        assert!(ms > 0.05 && ms < 100.0, "pstart {ms} ms out of range");
    }
}
