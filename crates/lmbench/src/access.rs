//! Synthetic user address-stream generators.
//!
//! Benchmarks and the compile workload need realistic reference streams:
//! mostly-local accesses over a working set with occasional far jumps, plus
//! sequential runs. The generators are deterministic (seeded) so every
//! experiment is reproducible.

use kernel_sim::Kernel;
use ppc_mmu::addr::PAGE_SIZE;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic reference stream over a working set.
#[derive(Debug, Clone)]
pub struct WorkingSet {
    /// Base effective address (page-aligned).
    pub base: u32,
    /// Working-set size in pages.
    pub pages: u32,
    /// Fraction of references that stay in the hot sixth of the set
    /// (temporal locality), in `[0, 1]`.
    pub locality: f64,
    rng: SmallRng,
}

impl WorkingSet {
    /// Creates a stream over `pages` pages at `base`, with default locality
    /// of 0.85.
    pub fn new(base: u32, pages: u32, seed: u64) -> Self {
        assert!(pages > 0, "working set cannot be empty");
        Self {
            base,
            pages,
            locality: 0.85,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next effective address in the stream.
    pub fn next_ea(&mut self) -> u32 {
        let hot_pages = (self.pages / 6).max(1);
        let page = if self.rng.gen_bool(self.locality) {
            self.rng.gen_range(0..hot_pages)
        } else {
            self.rng.gen_range(0..self.pages)
        };
        let offset = (self.rng.gen_range(0..PAGE_SIZE / 4) * 4) & !3;
        self.base + page * PAGE_SIZE + offset
    }

    /// Issues `n` references on `k` (current task), `write_frac` of them
    /// stores, with `compute` pipeline cycles between references. Returns
    /// the cycles consumed.
    pub fn run(&mut self, k: &mut Kernel, n: u32, write_frac: f64, compute: u32) -> u64 {
        let start = k.machine.cycles;
        for _ in 0..n {
            let ea = self.next_ea();
            let write = self.rng.gen_bool(write_frac);
            k.data_ref(ppc_mmu::addr::EffectiveAddress(ea), write).expect("benchmark workload is well-formed");
            k.machine.charge(compute as u64);
        }
        k.machine.cycles - start
    }

    /// Touches every page once, sequentially (a streaming phase).
    pub fn stream_all(&mut self, k: &mut Kernel) -> u64 {
        let start = k.machine.cycles;
        for p in 0..self.pages {
            k.data_ref(
                ppc_mmu::addr::EffectiveAddress(self.base + p * PAGE_SIZE),
                false,
            )
            .expect("benchmark workload is well-formed");
        }
        k.machine.cycles - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_stay_in_bounds() {
        let mut ws = WorkingSet::new(0x1000_0000, 10, 42);
        for _ in 0..1000 {
            let ea = ws.next_ea();
            assert!(ea >= 0x1000_0000);
            assert!(ea < 0x1000_0000 + 10 * PAGE_SIZE);
            assert_eq!(ea % 4, 0, "word-aligned");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = WorkingSet::new(0x1000_0000, 64, 7);
        let mut b = WorkingSet::new(0x1000_0000, 64, 7);
        for _ in 0..100 {
            assert_eq!(a.next_ea(), b.next_ea());
        }
    }

    #[test]
    fn locality_concentrates_references() {
        let mut ws = WorkingSet::new(0, 60, 1);
        ws.locality = 0.9;
        let hot_limit = 10 * PAGE_SIZE; // hot sixth of 60 pages
        let hot = (0..10_000).filter(|_| ws.next_ea() < hot_limit).count();
        assert!(hot > 8500, "≈90% of refs should be hot, got {hot}/10000");
    }

    #[test]
    fn single_page_working_set() {
        let mut ws = WorkingSet::new(0x2000_0000, 1, 3);
        for _ in 0..10 {
            assert!(ws.next_ea() < 0x2000_0000 + PAGE_SIZE);
        }
    }
}
