//! LmBench-style workloads for the MMU Tricks (OSDI 1999) reproduction.
//!
//! The paper's measurements (§4) come from LmBench [McVoy '96] and from
//! timing kernel compiles. This crate drives the simulated kernel with the
//! same operation mixes:
//!
//! | benchmark | paper row | module |
//! |---|---|---|
//! | `lat_syscall` | "Null syscall" (Table 3) | [`lat::null_syscall`] |
//! | `lat_ctx` | "ctxsw" (Tables 1–3, §6.1, §7) | [`lat::ctx_switch`] |
//! | `lat_pipe` | "pipe lat." | [`lat::pipe_latency`] |
//! | `bw_pipe` | "pipe bw" | [`bw::pipe_bandwidth`] |
//! | `bw_file_rd` | "file reread" | [`bw::file_reread`] |
//! | `lat_mmap` | "mmap lat." (Table 2, §7) | [`lat::mmap_latency`] |
//! | `lat_proc` | "pstart" (Table 1) | [`lat::process_start`] |
//! | kernel compile | §5.1, §9 wall-clock results | [`compile`] |
//!
//! All benchmarks run on a booted [`kernel_sim::Kernel`] and report simulated
//! wall-clock numbers derived from the machine's cycle counter.

pub mod access;
pub mod bw;
pub mod compile;
pub mod lat;
pub mod mem;
pub mod multiuser;
pub mod report;

pub use compile::{CompileConfig, CompileResult};
pub use report::{run_suite, LmbenchResults, SuiteConfig};
