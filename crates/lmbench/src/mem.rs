//! LmBench's memory-hierarchy microbenchmarks: `lat_mem_rd` and `bw_mem`.
//!
//! These don't appear in the paper's tables, but they were part of the
//! LmBench toolchain the authors ran, and here they double as a validation
//! of the simulated memory hierarchy: the latency sweep must show the
//! L1 → L2 → DRAM staircase at the configured cache sizes.

use kernel_sim::sched::USER_BASE;
use kernel_sim::Kernel;
use ppc_machine::time::mb_per_sec;
use ppc_mmu::addr::{EffectiveAddress, PAGE_SIZE};

/// A `bw_mem` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Streaming reads (`bw_mem rd`).
    Read,
    /// Streaming writes (`bw_mem wr`).
    Write,
    /// Copy (`bw_mem cp`): read one region, write another.
    Copy,
}

fn setup(k: &mut Kernel, pages: u32) -> u32 {
    let pid = k.spawn_process(pages + 4).expect("spawn");
    k.switch_to(pid);
    k.prefault(USER_BASE, pages).expect("benchmark workload is well-formed");
    USER_BASE
}

/// `lat_mem_rd`: average load latency in nanoseconds over a `kb`-KiB region
/// touched at cache-line stride (32 B), measured warm. Sweeping `kb` draws
/// the cache-hierarchy staircase.
pub fn read_latency_ns(k: &mut Kernel, kb: u32) -> f64 {
    let bytes = kb * 1024;
    let pages = bytes.div_ceil(PAGE_SIZE).max(1);
    let base = setup(k, pages);
    let line = 32;
    let pass = |k: &mut Kernel| {
        let mut off = 0;
        while off < bytes {
            k.data_ref(EffectiveAddress(base + off), false).expect("benchmark workload is well-formed");
            off += line;
        }
    };
    // Warm pass (faults + cache fill where it fits).
    pass(k);
    let accesses = (bytes / line) as u64;
    let c0 = k.machine.cycles;
    pass(k);
    pass(k);
    let cycles = (k.machine.cycles - c0) as f64 / 2.0;
    // data_ref charges one pipeline cycle per reference; lat_mem_rd's
    // pointer chase exposes the raw load-to-use latency, so keep it in.
    cycles / accesses as f64 / k.machine.cfg.clock_mhz as f64 * 1000.0
}

/// `bw_mem`: streaming bandwidth in MB/s for `op` over a `kb`-KiB region.
pub fn bandwidth_mbs(k: &mut Kernel, op: MemOp, kb: u32) -> f64 {
    let bytes = kb * 1024;
    let pages = bytes.div_ceil(PAGE_SIZE).max(1);
    // Copy needs a second region.
    let total_pages = if op == MemOp::Copy { pages * 2 } else { pages };
    let base = setup(k, total_pages);
    let dst = base + pages * PAGE_SIZE;
    let line = 32;
    let pass = |k: &mut Kernel| {
        let mut off = 0;
        while off < bytes {
            match op {
                MemOp::Read => {
                    k.data_ref(EffectiveAddress(base + off), false).expect("benchmark workload is well-formed");
                }
                MemOp::Write => {
                    k.data_ref(EffectiveAddress(base + off), true).expect("benchmark workload is well-formed");
                }
                MemOp::Copy => {
                    k.data_ref(EffectiveAddress(base + off), false).expect("benchmark workload is well-formed");
                    k.data_ref(EffectiveAddress(dst + off), true).expect("benchmark workload is well-formed");
                }
            }
            // The unrolled word loop for the rest of the line.
            k.machine.charge(8);
            off += line;
        }
    };
    pass(k);
    let c0 = k.machine.cycles;
    pass(k);
    pass(k);
    let t = k.machine.time_of((k.machine.cycles - c0) / 2);
    mb_per_sec(bytes as u64, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::KernelConfig;
    use ppc_machine::MachineConfig;

    fn kernel() -> Kernel {
        Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized())
    }

    #[test]
    fn latency_staircase_l1_l2_dram() {
        // 604: 16 KiB L1, 512 KiB L2. 8 KiB sits in L1, 128 KiB in L2,
        // 4 MiB in DRAM.
        let l1 = read_latency_ns(&mut kernel(), 8);
        let l2 = read_latency_ns(&mut kernel(), 128);
        let dram = read_latency_ns(&mut kernel(), 4096);
        assert!(l1 < l2, "L1 ({l1:.0}ns) must beat L2 ({l2:.0}ns)");
        assert!(l2 < dram, "L2 ({l2:.0}ns) must beat DRAM ({dram:.0}ns)");
        assert!(dram / l1 > 5.0, "hierarchy spread must be pronounced");
    }

    #[test]
    fn no_l2_machine_has_two_plateaus() {
        let mk = || Kernel::boot(MachineConfig::ppc603_133_no_l2(), KernelConfig::optimized());
        let l1 = read_latency_ns(&mut mk(), 4);
        let mid = read_latency_ns(&mut mk(), 128);
        let dram = read_latency_ns(&mut mk(), 2048);
        assert!(l1 < mid);
        // Without an L2, 128 KiB already pays full DRAM latency.
        assert!(
            (mid - dram).abs() / dram < 0.15,
            "no mid plateau without L2: {mid:.0} vs {dram:.0}"
        );
    }

    #[test]
    fn bandwidth_read_beats_copy() {
        let rd = bandwidth_mbs(&mut kernel(), MemOp::Read, 1024);
        let cp = bandwidth_mbs(&mut kernel(), MemOp::Copy, 1024);
        assert!(rd > cp, "read bw ({rd:.0}) must beat copy bw ({cp:.0})");
    }

    #[test]
    fn small_regions_are_faster_than_big() {
        let small = bandwidth_mbs(&mut kernel(), MemOp::Read, 8);
        let big = bandwidth_mbs(&mut kernel(), MemOp::Read, 4096);
        assert!(small > 2.0 * big);
    }
}
