//! Suite runner: all LmBench rows for one (machine, kernel) pair.

use kernel_sim::kernel::PathLengths;
use kernel_sim::{Kernel, KernelConfig};
use ppc_machine::MachineConfig;

use crate::{bw, lat};

/// Iteration counts for a suite run.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Null-syscall iterations.
    pub syscall_iters: u32,
    /// Context-switch rounds.
    pub ctx_rounds: u32,
    /// Pipe-latency rounds.
    pub pipe_rounds: u32,
    /// mmap iterations.
    pub mmap_iters: u32,
    /// Process-start iterations.
    pub pstart_iters: u32,
}

impl SuiteConfig {
    /// Quick settings for tests.
    pub fn quick() -> Self {
        Self {
            syscall_iters: 50,
            ctx_rounds: 10,
            pipe_rounds: 10,
            mmap_iters: 3,
            pstart_iters: 3,
        }
    }

    /// Full settings for the table harness.
    pub fn full() -> Self {
        Self {
            syscall_iters: 400,
            ctx_rounds: 60,
            pipe_rounds: 60,
            mmap_iters: 10,
            pstart_iters: 10,
        }
    }
}

/// One row of LmBench numbers.
#[derive(Debug, Clone, Copy)]
pub struct LmbenchResults {
    /// Null syscall, µs.
    pub null_syscall_us: f64,
    /// 2-process, 0 KiB context switch, µs.
    pub ctxsw2_us: f64,
    /// 8-process context switch (the §7 "8-process context switch"), µs.
    pub ctxsw8_us: f64,
    /// Pipe latency, µs.
    pub pipe_lat_us: f64,
    /// Pipe bandwidth, MB/s.
    pub pipe_bw_mbs: f64,
    /// File reread bandwidth, MB/s.
    pub file_reread_mbs: f64,
    /// mmap+munmap latency, µs.
    pub mmap_lat_us: f64,
    /// Process start, ms.
    pub pstart_ms: f64,
}

/// Runs the full suite, booting a fresh kernel per benchmark via `boot`.
pub fn run_suite_with(boot: impl Fn() -> Kernel, cfg: SuiteConfig) -> LmbenchResults {
    LmbenchResults {
        null_syscall_us: lat::null_syscall(&mut boot(), cfg.syscall_iters),
        ctxsw2_us: lat::ctx_switch(&mut boot(), 2, 0, cfg.ctx_rounds),
        ctxsw8_us: lat::ctx_switch(&mut boot(), 8, 4, cfg.ctx_rounds / 2 + 1),
        pipe_lat_us: lat::pipe_latency(&mut boot(), cfg.pipe_rounds),
        pipe_bw_mbs: bw::pipe_bandwidth(&mut boot()),
        file_reread_mbs: bw::file_reread(&mut boot()),
        mmap_lat_us: lat::mmap_latency(&mut boot(), cfg.mmap_iters),
        pstart_ms: lat::process_start(&mut boot(), cfg.pstart_iters),
    }
}

/// Runs the suite for a machine + kernel-config pair.
pub fn run_suite(machine: MachineConfig, kcfg: KernelConfig, cfg: SuiteConfig) -> LmbenchResults {
    run_suite_with(|| Kernel::boot(machine, kcfg), cfg)
}

/// Runs the suite for a machine + kernel-config + explicit path lengths
/// (the comparison-OS models).
pub fn run_suite_paths(
    machine: MachineConfig,
    kcfg: KernelConfig,
    paths: PathLengths,
    cfg: SuiteConfig,
) -> LmbenchResults {
    run_suite_with(|| Kernel::boot_with_paths(machine, kcfg, paths), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_completes_with_sane_values() {
        let r = run_suite(
            MachineConfig::ppc604_185(),
            KernelConfig::optimized(),
            SuiteConfig::quick(),
        );
        assert!(r.null_syscall_us > 0.0);
        assert!(r.ctxsw2_us > 0.0);
        assert!(r.ctxsw8_us > r.ctxsw2_us * 0.5);
        assert!(
            r.pipe_lat_us > r.null_syscall_us,
            "pipe latency includes switches"
        );
        assert!(r.pipe_bw_mbs > 0.0);
        assert!(r.file_reread_mbs > 0.0);
        assert!(r.mmap_lat_us > 0.0);
        assert!(r.pstart_ms > 0.0);
    }

    #[test]
    fn optimized_beats_unoptimized_across_the_board() {
        let opt = run_suite(
            MachineConfig::ppc604_133(),
            KernelConfig::optimized(),
            SuiteConfig::quick(),
        );
        let unopt = run_suite(
            MachineConfig::ppc604_133(),
            KernelConfig::unoptimized(),
            SuiteConfig::quick(),
        );
        assert!(opt.null_syscall_us < unopt.null_syscall_us);
        assert!(opt.ctxsw2_us < unopt.ctxsw2_us);
        assert!(opt.pipe_lat_us < unopt.pipe_lat_us);
        assert!(opt.pipe_bw_mbs > unopt.pipe_bw_mbs);
        assert!(opt.mmap_lat_us < unopt.mmap_lat_us);
    }
}
