//! Bandwidth benchmarks: pipe bandwidth and file reread.

use kernel_sim::sched::USER_BASE;
use kernel_sim::Kernel;
use ppc_machine::time::mb_per_sec;
use ppc_mmu::addr::PAGE_SIZE;

/// Total bytes moved by the pipe-bandwidth benchmark.
pub const PIPE_BW_BYTES: u32 = 512 * 1024;

/// Measured: LmBench `bw_pipe` — bytes/second through a pipe between two
/// processes, in MB/s. The writer fills the one-page ring, the reader
/// drains it, alternating exactly as the blocking processes would.
pub fn pipe_bandwidth(k: &mut Kernel) -> f64 {
    let w = k.spawn_process(64).expect("spawn");
    let r = k.spawn_process(64).expect("spawn");
    let p = k.pipe_create().expect("benchmark workload is well-formed");
    // 64 KiB user buffers on both sides, pre-faulted.
    let buf_pages = 16;
    for &pid in &[w, r] {
        k.switch_to(pid);
        k.prefault(USER_BASE, buf_pages).expect("benchmark workload is well-formed");
    }
    // Warm one buffer-sized transfer through.
    let buf_bytes = buf_pages * PAGE_SIZE;
    k.pipe_transfer(p, w, r, USER_BASE, USER_BASE, buf_bytes).expect("benchmark workload is well-formed");
    let start = k.machine.cycles;
    let mut moved = 0u64;
    // lmbench moves the data in 64 KiB write()/read() pairs.
    for _ in 0..PIPE_BW_BYTES / buf_bytes {
        k.pipe_transfer(p, w, r, USER_BASE, USER_BASE, buf_bytes).expect("benchmark workload is well-formed");
        moved += buf_bytes as u64;
    }
    let t = k.machine.time_of(k.machine.cycles - start);
    mb_per_sec(moved, t)
}

/// Total bytes of the file-reread benchmark's file. Much larger than the
/// board L2, so page-cache pages stream from DRAM — this is what puts file
/// reread below pipe bandwidth in the paper's tables.
pub const FILE_RR_BYTES: u32 = 4 * 1024 * 1024;

/// Measured: LmBench `bw_file_rd` (reread) — bytes/second reading a fully
/// cached file through `read()` in 64 KiB chunks, in MB/s.
pub fn file_reread(k: &mut Kernel) -> f64 {
    let pid = k.spawn_process(32).expect("spawn");
    k.switch_to(pid);
    let chunk: u32 = 64 * 1024;
    k.prefault(USER_BASE, chunk / PAGE_SIZE).expect("benchmark workload is well-formed");
    let f = k.create_file(FILE_RR_BYTES).expect("benchmark workload is well-formed");
    // Warm pass (the "re" in reread).
    let mut off = 0;
    while off < FILE_RR_BYTES {
        k.sys_read(f, off, USER_BASE, chunk).expect("benchmark workload is well-formed");
        off += chunk;
    }
    let start = k.machine.cycles;
    let mut off = 0;
    while off < FILE_RR_BYTES {
        k.sys_read(f, off, USER_BASE, chunk).expect("benchmark workload is well-formed");
        off += chunk;
    }
    let t = k.machine.time_of(k.machine.cycles - start);
    mb_per_sec(FILE_RR_BYTES as u64, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::KernelConfig;
    use ppc_machine::MachineConfig;

    #[test]
    fn pipe_bandwidth_in_plausible_range() {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let bw = pipe_bandwidth(&mut k);
        assert!(bw > 5.0 && bw < 500.0, "pipe bw {bw} MB/s out of range");
    }

    #[test]
    fn file_reread_in_plausible_range() {
        let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
        let bw = file_reread(&mut k);
        assert!(bw > 5.0 && bw < 500.0, "file reread {bw} MB/s out of range");
    }

    #[test]
    fn faster_machine_moves_more_bytes_per_second() {
        let mut slow = Kernel::boot(MachineConfig::ppc603_133(), KernelConfig::optimized());
        let mut fast = Kernel::boot(MachineConfig::ppc604_200(), KernelConfig::optimized());
        assert!(pipe_bandwidth(&mut fast) > pipe_bandwidth(&mut slow));
    }
}
