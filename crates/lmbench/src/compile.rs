//! The kernel-compile workload — "the informal Linux benchmark of compiling
//! the kernel" (paper §4): "The mix of process creation, file I/O, and
//! computation in the kernel compile is a good guess at a typical user load."
//!
//! Structure: each compilation unit spawns a compiler process that reads its
//! source, then alternates compute bursts over a cache-warm arena with short
//! I/O stalls (during which the idle task runs — this interleaving is what
//! makes the §9 idle-task experiments visible: anything the idle task does
//! to the cache is paid for by the next burst).

use kernel_sim::sched::USER_BASE;
use kernel_sim::Kernel;
use ppc_machine::MonitorSnapshot;
use ppc_mmu::addr::PAGE_SIZE;

use crate::access::WorkingSet;

/// Parameters of the synthetic compile.
#[derive(Debug, Clone, Copy)]
pub struct CompileConfig {
    /// Number of compilation units ("files").
    pub units: u32,
    /// Pages of the compiler's hot compute arena (sized near the L1 D-cache
    /// so cache warmth matters).
    pub hot_pages: u32,
    /// Fresh pages allocated (demand-zero faulted) per unit — the
    /// `get_free_page()` consumers.
    pub alloc_pages: u32,
    /// Pages of the wide, sparsely-referenced data set (symbol tables,
    /// ASTs): file-backed, larger than TLB reach, the source of the
    /// compile's steady TLB-miss rate (cc1 working sets dwarf a 128/256
    /// entry TLB — this is why the paper's compile takes 219M TLB misses).
    pub wide_pages: u32,
    /// Fraction of compute references that go to the wide set.
    pub wide_frac: f64,
    /// Total data references in the compute phase of each unit.
    pub refs_per_unit: u32,
    /// Compute bursts per unit; an I/O stall (idle time) separates bursts.
    pub slices: u32,
    /// Source bytes read per unit.
    pub source_bytes: u32,
    /// Idle (I/O-stall) cycles between bursts.
    pub idle_slice: u64,
    /// RNG seed.
    pub seed: u64,
}

impl CompileConfig {
    /// A small compile for tests (a few million cycles).
    pub fn small() -> Self {
        Self {
            units: 6,
            hot_pages: 4,
            alloc_pages: 6,
            wide_pages: 192,
            wide_frac: 0.15,
            refs_per_unit: 30_000,
            slices: 10,
            source_bytes: 16 * 1024,
            idle_slice: 60_000,
            seed: 1,
        }
    }

    /// The full benchmark compile (tens of millions of cycles — a scaled
    /// stand-in for the paper's 8–10 minute compiles).
    pub fn full() -> Self {
        Self {
            units: 24,
            hot_pages: 4,
            alloc_pages: 6,
            wide_pages: 192,
            wide_frac: 0.15,
            refs_per_unit: 80_000,
            slices: 12,
            source_bytes: 48 * 1024,
            idle_slice: 60_000,
            seed: 1,
        }
    }
}

/// Results of one compile run.
#[derive(Debug, Clone, Copy)]
pub struct CompileResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Wall-clock milliseconds at the machine's clock.
    pub wall_ms: f64,
    /// Hardware counter deltas for the run.
    pub monitor: MonitorSnapshot,
    /// Kernel counter deltas for the run.
    pub kernel: kernel_sim::KernelStats,
    /// Hash-table searches during the run.
    pub htab_searches: u64,
    /// Hash-table search misses during the run (the §5.1 "hash table
    /// misses").
    pub htab_search_misses: u64,
    /// High-water mark of TLB entries holding kernel translations, sampled
    /// at the busiest point of each unit (the §5.1 "33%" / "four entries"
    /// measurement).
    pub kernel_tlb_highwater: u32,
    /// That high-water mark as a fraction of total TLB entries.
    pub kernel_tlb_frac: f64,
}

/// Runs the compile workload on a booted kernel.
pub fn kernel_compile(k: &mut Kernel, cfg: CompileConfig) -> CompileResult {
    let sources = k.create_file(cfg.source_bytes.max(PAGE_SIZE)).expect("benchmark workload is well-formed");
    // The shared wide data set (like mapped libraries / the front end's
    // tables): file-backed so faults do not clear pages.
    let wide_file = (cfg.wide_pages > 0)
        .then(|| k.create_file(cfg.wide_pages * PAGE_SIZE).expect("benchmark workload is well-formed"));
    let m0 = k.machine.snapshot();
    let k0 = k.stats;
    let h0 = *k.htab.stats();
    let c0 = k.machine.cycles;
    let mut kernel_tlb_hwm = 0u32;
    let alloc_base = USER_BASE + cfg.hot_pages * PAGE_SIZE;
    for unit in 0..cfg.units {
        // "cc1" for this unit.
        let pid = k
            .spawn_process(cfg.hot_pages + cfg.alloc_pages + 16)
            .expect("spawn cc1");
        k.switch_to(pid);
        // Read the source file.
        k.sys_read(sources, 0, USER_BASE, cfg.source_bytes.min(64 * 1024)).expect("benchmark workload is well-formed");
        // Allocation phase: fresh demand-zero pages (symbol tables, AST...).
        k.prefault(alloc_base, cfg.alloc_pages).expect("benchmark workload is well-formed");
        // Map and fault the wide data set.
        let wide_base = wide_file.map(|f| {
            let base = k.sys_mmap(Some(f), cfg.wide_pages * PAGE_SIZE);
            k.prefault(base, cfg.wide_pages).expect("benchmark workload is well-formed");
            base
        });
        // Compute phase: bursts over the hot arena plus sparse references
        // into the wide set (the TLB-miss generator), separated by I/O
        // stalls during which the idle task runs.
        let mut ws = WorkingSet::new(USER_BASE, cfg.hot_pages, cfg.seed + unit as u64);
        ws.locality = 0.95;
        let mut wide = wide_base.map(|base| {
            let mut w = WorkingSet::new(base, cfg.wide_pages, cfg.seed + 1000 + unit as u64);
            w.locality = 0.0;
            w
        });
        let per_slice = cfg.refs_per_unit / cfg.slices.max(1);
        let wide_refs = (per_slice as f64 * cfg.wide_frac) as u32;
        for _ in 0..cfg.slices {
            ws.run(k, per_slice - wide_refs, 0.35, 1);
            if let Some(w) = wide.as_mut() {
                w.run(k, wide_refs, 0.0, 1);
            }
            k.run_idle(cfg.idle_slice);
        }
        // Write the object file: stream a result buffer.
        k.user_write(alloc_base, (cfg.alloc_pages * PAGE_SIZE).min(32 * 1024)).expect("benchmark workload is well-formed");
        // Sample the kernel's TLB footprint at the busiest point.
        let kernel_entries = k
            .machine
            .mmu
            .tlb_entries_matching(kernel_sim::vsid::is_kernel_vsid);
        kernel_tlb_hwm = kernel_tlb_hwm.max(kernel_entries);
        k.exit_current();
    }
    let cycles = k.machine.cycles - c0;
    let h1 = *k.htab.stats();
    CompileResult {
        cycles,
        wall_ms: k.machine.time_of(cycles).as_ms(),
        monitor: k.machine.snapshot().delta(&m0),
        kernel: k.stats.delta(&k0),
        htab_searches: h1.searches - h0.searches,
        htab_search_misses: h1.misses - h0.misses,
        kernel_tlb_highwater: kernel_tlb_hwm,
        kernel_tlb_frac: kernel_tlb_hwm as f64
            / (k.machine.cfg.mmu.itlb.entries + k.machine.cfg.mmu.dtlb.entries) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::KernelConfig;
    use ppc_machine::MachineConfig;

    #[test]
    fn compile_exercises_everything() {
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
        let r = kernel_compile(&mut k, CompileConfig::small());
        assert!(r.cycles > 100_000);
        assert_eq!(r.kernel.processes_spawned, 6);
        assert!(r.kernel.page_faults > 0);
        assert!(r.monitor.tlb_misses() > 0 || r.monitor.dbat_hits > 0);
        assert!(r.kernel.idle_cycles > 0);
    }

    #[test]
    fn compile_is_deterministic() {
        let run = || {
            let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
            kernel_compile(&mut k, CompileConfig::small()).cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bats_reduce_compile_tlb_misses() {
        // The §5.1 headline: BAT-mapping the kernel cut TLB misses ~10% and
        // hash-table misses ~20% on the compile.
        let run = |use_bats: bool| {
            let kcfg = KernelConfig {
                use_bats,
                ..KernelConfig::unoptimized()
            };
            let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
            let r = kernel_compile(&mut k, CompileConfig::small());
            (r.monitor.tlb_misses(), r.cycles)
        };
        let (misses_no_bats, cycles_no_bats) = run(false);
        let (misses_bats, cycles_bats) = run(true);
        assert!(
            misses_bats < misses_no_bats,
            "BATs must reduce TLB misses: {misses_bats} vs {misses_no_bats}"
        );
        assert!(
            cycles_bats < cycles_no_bats,
            "BATs must reduce compile time: {cycles_bats} vs {cycles_no_bats}"
        );
    }
}
