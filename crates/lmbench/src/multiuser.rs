//! A multiuser mixed load — the paper's closing workload sketch: "a system
//! heavily loaded with users compiling, editing, reading mail so a lot of
//! I/O happens that must be waited for" (§9).
//!
//! Each simulated user runs a script of steps (compute bursts, file reads,
//! pipe chatter, I/O waits, process churn). A round-robin driver interleaves
//! the scripts in time slices; whenever every runnable user is waiting on
//! I/O, the idle task gets the CPU — which is exactly when the paper's
//! idle-task tricks earn their keep.

use kernel_sim::sched::USER_BASE;
use kernel_sim::{Kernel, KernelStats, Pid};
use ppc_machine::MonitorSnapshot;
use ppc_mmu::addr::PAGE_SIZE;

use crate::access::WorkingSet;

/// One step of a user's script.
#[derive(Debug, Clone, Copy)]
pub enum Step {
    /// A compute burst over the user's working set.
    Compute {
        /// Data references to issue.
        refs: u32,
    },
    /// Read `bytes` from the user's file (page cache).
    FileRead {
        /// Bytes to read.
        bytes: u32,
    },
    /// Block on I/O for `cycles` (disk seek, network, keystroke): the
    /// driver lets other users — or the idle task — run.
    IoWait {
        /// Stall length in cycles.
        cycles: u64,
    },
    /// Fork + exec a short-lived helper (grep, ls, cc1...) that touches
    /// `pages` and exits.
    SpawnHelper {
        /// Working-set pages of the helper.
        pages: u32,
    },
    /// mmap + touch + munmap a scratch region (an editor's buffer, a
    /// linker's mapping).
    MapScratch {
        /// Region size in pages.
        pages: u32,
    },
}

/// A user: a looping script plus their standing state.
#[derive(Debug, Clone)]
pub struct User {
    /// Display name.
    pub name: &'static str,
    /// Working-set pages.
    pub ws_pages: u32,
    /// The script, executed round-robin one step per turn.
    pub script: Vec<Step>,
}

/// The three users of the paper's sketch.
pub fn classic_mix() -> Vec<User> {
    vec![
        User {
            name: "compiler",
            ws_pages: 48,
            script: vec![
                Step::FileRead { bytes: 24 * 1024 },
                Step::Compute { refs: 6_000 },
                Step::IoWait { cycles: 40_000 },
                Step::Compute { refs: 6_000 },
                Step::SpawnHelper { pages: 24 },
                Step::IoWait { cycles: 40_000 },
            ],
        },
        User {
            name: "editor",
            ws_pages: 24,
            script: vec![
                Step::Compute { refs: 1_500 },
                Step::IoWait { cycles: 80_000 }, // thinking / keystrokes
                Step::MapScratch { pages: 32 },
                Step::FileRead { bytes: 8 * 1024 },
                Step::IoWait { cycles: 80_000 },
            ],
        },
        User {
            name: "mail",
            ws_pages: 16,
            script: vec![
                Step::IoWait { cycles: 100_000 }, // waiting on the spool
                Step::FileRead { bytes: 16 * 1024 },
                Step::Compute { refs: 1_000 },
                Step::SpawnHelper { pages: 12 },
            ],
        },
    ]
}

/// Results of a multiuser run.
#[derive(Debug, Clone, Copy)]
pub struct MultiuserResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Fraction of time in the idle task.
    pub idle_frac: f64,
    /// Hardware counter deltas.
    pub monitor: MonitorSnapshot,
    /// Kernel counter deltas.
    pub kernel: KernelStats,
}

struct UserState {
    pid: Pid,
    ws: WorkingSet,
    file: usize,
    file_off: u32,
    step: usize,
    script: Vec<Step>,
    ws_pages: u32,
}

/// Runs `rounds` full script cycles of the user mix on `k`.
pub fn run_multiuser(k: &mut Kernel, users: &[User], rounds: u32) -> MultiuserResult {
    let mut states: Vec<UserState> = users
        .iter()
        .enumerate()
        .map(|(i, u)| {
            let pid = k.spawn_process(u.ws_pages + 8).expect("spawn user");
            k.switch_to(pid);
            k.prefault(USER_BASE, u.ws_pages).expect("benchmark workload is well-formed");
            let file = k.create_file(64 * 1024).expect("benchmark workload is well-formed");
            UserState {
                pid,
                ws: WorkingSet::new(USER_BASE, u.ws_pages, 42 + i as u64),
                file,
                file_off: 0,
                step: 0,
                script: u.script.clone(),
                ws_pages: u.ws_pages,
            }
        })
        .collect();
    let m0 = k.machine.snapshot();
    let k0 = k.stats;
    let c0 = k.machine.cycles;
    let idle0 = k.stats.idle_cycles;
    let total_steps: u64 =
        rounds as u64 * states.iter().map(|s| s.script.len() as u64).sum::<u64>();
    let mut done = 0u64;
    // Round-robin: one step per user per turn; IoWait donates to the idle
    // task (as the real system would when the run queue empties).
    while done < total_steps {
        for s in &mut states {
            if done >= total_steps {
                break;
            }
            let step = s.script[s.step % s.script.len()];
            s.step += 1;
            done += 1;
            k.switch_to(s.pid);
            match step {
                Step::Compute { refs } => {
                    s.ws.run(k, refs, 0.3, 1);
                }
                Step::FileRead { bytes } => {
                    let bytes = bytes.min(64 * 1024);
                    if s.file_off + bytes > 64 * 1024 {
                        s.file_off = 0;
                    }
                    k.sys_read(s.file, s.file_off, USER_BASE, bytes).expect("benchmark workload is well-formed");
                    s.file_off += bytes;
                }
                Step::IoWait { cycles } => {
                    // The user blocks; with every other user also between
                    // steps, the CPU falls to the idle task.
                    k.run_idle(cycles);
                }
                Step::SpawnHelper { pages } => {
                    if let Ok(child) = k.sys_fork() {
                        k.switch_to(child);
                        let addr = k.sys_mmap(None, pages * PAGE_SIZE);
                        k.prefault(addr, pages).expect("benchmark workload is well-formed");
                        k.exit_current();
                        k.switch_to(s.pid);
                    }
                }
                Step::MapScratch { pages } => {
                    let addr = k.sys_mmap(None, pages * PAGE_SIZE);
                    k.prefault(addr, pages.min(8)).expect("benchmark workload is well-formed");
                    k.sys_munmap(addr, pages * PAGE_SIZE);
                }
            }
            let _ = s.ws_pages;
        }
    }
    let cycles = k.machine.cycles - c0;
    MultiuserResult {
        cycles,
        wall_ms: k.machine.time_of(cycles).as_ms(),
        idle_frac: (k.stats.idle_cycles - idle0) as f64 / cycles as f64,
        monitor: k.machine.snapshot().delta(&m0),
        kernel: k.stats.delta(&k0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_sim::KernelConfig;
    use ppc_machine::MachineConfig;

    #[test]
    fn mix_runs_and_idles() {
        let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
        let r = run_multiuser(&mut k, &classic_mix(), 4);
        assert!(r.cycles > 500_000);
        assert!(r.idle_frac > 0.1, "the mix must leave real idle time");
        assert!(r.kernel.processes_spawned > 3, "helpers fork and exit");
        assert!(r.kernel.syscalls > 10);
        assert_eq!(r.kernel.segfaults, 0);
    }

    #[test]
    fn optimized_kernel_wins_the_multiuser_mix() {
        let run = |kcfg: KernelConfig| {
            let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
            run_multiuser(&mut k, &classic_mix(), 4).wall_ms
        };
        let unopt = run(KernelConfig::unoptimized());
        let opt = run(KernelConfig::optimized());
        assert!(
            opt < unopt,
            "optimized mix ({opt:.1} ms) must beat unoptimized ({unopt:.1} ms)"
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut k = Kernel::boot(MachineConfig::ppc604_133(), KernelConfig::optimized());
            run_multiuser(&mut k, &classic_mix(), 3).cycles
        };
        assert_eq!(run(), run());
    }
}
