//! Machine configurations for the boards measured in the paper.

use ppc_cache::bus::Bus;
use ppc_cache::hierarchy::MemSystemConfig;
use ppc_mmu::translate::MmuConfig;

use crate::exceptions::ExceptionCosts;

/// Which CPU core a machine uses; selects the TLB reload mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuModel {
    /// PowerPC 603: TLB misses trap to a software handler.
    Ppc603,
    /// PowerPC 604 (also 601/750-style): hardware hash-table walk on a TLB
    /// miss; only a hash-table miss traps to software.
    Ppc604,
}

/// A complete machine description.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Human-readable name, e.g. `"604 185MHz"`.
    pub name: &'static str,
    /// CPU core.
    pub model: CpuModel,
    /// Core clock in MHz (used to convert cycles to wall-clock time).
    pub clock_mhz: u32,
    /// MMU geometry.
    pub mmu: MmuConfig,
    /// Cache + bus geometry.
    pub mem: MemSystemConfig,
    /// Hardware exception costs.
    pub costs: ExceptionCosts,
    /// RAM size in bytes (32 MiB on every machine in the paper, §4).
    pub ram_bytes: u32,
}

/// RAM installed in every benchmarked machine (paper §4: "We used 32M of RAM
/// in each machine tested").
pub const RAM_BYTES: u32 = 32 * 1024 * 1024;

impl MachineConfig {
    /// 133 MHz PowerPC 603 (Table 2's software-reload machine).
    pub fn ppc603_133() -> Self {
        Self {
            name: "603 133MHz",
            model: CpuModel::Ppc603,
            clock_mhz: 133,
            mmu: MmuConfig::ppc603(),
            mem: MemSystemConfig::ppc603(),
            costs: ExceptionCosts::ppc603(),
            ram_bytes: RAM_BYTES,
        }
    }

    /// 133 MHz PowerPC 603 on an L2-less PReP board (used for the cache
    /// experiments of paper §9, where every L1 miss goes to DRAM).
    pub fn ppc603_133_no_l2() -> Self {
        Self {
            name: "603 133MHz (no L2)",
            mem: MemSystemConfig::ppc603_no_l2(),
            ..Self::ppc603_133()
        }
    }

    /// 180 MHz PowerPC 603 (Table 1's software-reload machine).
    pub fn ppc603_180() -> Self {
        Self {
            name: "603 180MHz",
            clock_mhz: 180,
            mem: MemSystemConfig {
                // Same board class; a faster core makes memory relatively
                // slower in core cycles.
                bus: Bus::commodity().scaled(180, 133),
                ..MemSystemConfig::ppc603()
            },
            ..Self::ppc603_133()
        }
    }

    /// 133 MHz PowerPC 604 (Table 3's PowerMac 9500).
    pub fn ppc604_133() -> Self {
        Self {
            name: "604 133MHz",
            model: CpuModel::Ppc604,
            clock_mhz: 133,
            mmu: MmuConfig::ppc604(),
            mem: MemSystemConfig::ppc604(),
            costs: ExceptionCosts::ppc604(),
            ram_bytes: RAM_BYTES,
        }
    }

    /// 185 MHz PowerPC 604 (Tables 1 and 2).
    pub fn ppc604_185() -> Self {
        Self {
            name: "604 185MHz",
            clock_mhz: 185,
            mem: MemSystemConfig {
                bus: Bus::commodity().scaled(185, 133),
                ..MemSystemConfig::ppc604()
            },
            ..Self::ppc604_133()
        }
    }

    /// 200 MHz PowerPC 604 on "a machine with significantly faster main
    /// memory and a better board design" (Table 1).
    pub fn ppc604_200() -> Self {
        Self {
            name: "604 200MHz",
            clock_mhz: 200,
            mem: MemSystemConfig {
                bus: Bus::fast_board().scaled(200, 133),
                ..MemSystemConfig::ppc604()
            },
            ..Self::ppc604_133()
        }
    }

    /// 266 MHz PowerPC 750 — the paper notes its hardware-reload style
    /// ("when we refer to the 604 we mean the 604 style of TLB reloads (in
    /// hardware) which includes the 750 and 601"): 32+32 KiB L1, 1 MiB
    /// back-side L2, 128-entry TLBs per side, hardware hash-table walk.
    pub fn ppc750_266() -> Self {
        use ppc_cache::config::CacheConfig;
        Self {
            name: "750 266MHz",
            clock_mhz: 266,
            mem: MemSystemConfig {
                icache: CacheConfig {
                    size_bytes: 32 * 1024,
                    ways: 8,
                    ..CacheConfig::ppc604_insn()
                },
                dcache: CacheConfig {
                    size_bytes: 32 * 1024,
                    ways: 8,
                    ..CacheConfig::ppc604_data()
                },
                l2: Some(CacheConfig::board_l2(1024 * 1024)),
                l2_hit: 12,
                bus: Bus::fast_board().scaled(266, 133),
            },
            ..Self::ppc604_133()
        }
    }

    /// A stable machine-readable slug derived from the name, for JSON and
    /// perf.data headers: lowercase, `MHz` dropped, punctuation collapsed to
    /// single dashes — `"604 133MHz"` → `"604-133"`,
    /// `"603 133MHz (no L2)"` → `"603-133-no-l2"`.
    pub fn id(&self) -> String {
        let mut s = String::new();
        for part in self
            .name
            .to_ascii_lowercase()
            .replace("mhz", "")
            .split(|c: char| !c.is_ascii_alphanumeric())
        {
            if part.is_empty() {
                continue;
            }
            if !s.is_empty() {
                s.push('-');
            }
            s.push_str(part);
        }
        s
    }

    /// All five configurations the paper reports on.
    pub fn all() -> Vec<MachineConfig> {
        vec![
            Self::ppc603_133(),
            Self::ppc603_180(),
            Self::ppc604_133(),
            Self::ppc604_185(),
            Self::ppc604_200(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for cfg in MachineConfig::all() {
            assert!(cfg.clock_mhz >= 133 && cfg.clock_mhz <= 200);
            assert_eq!(cfg.ram_bytes, RAM_BYTES);
            match cfg.model {
                CpuModel::Ppc603 => {
                    assert_eq!(cfg.mmu.dtlb.entries, 64);
                    assert_eq!(cfg.mem.dcache.size_bytes, 8 * 1024);
                    assert_eq!(cfg.costs.tlb_miss_invoke_return, 32);
                }
                CpuModel::Ppc604 => {
                    assert_eq!(cfg.mmu.dtlb.entries, 128);
                    assert_eq!(cfg.mem.dcache.size_bytes, 16 * 1024);
                    assert_eq!(cfg.costs.htab_miss_interrupt, 91);
                }
            }
        }
    }

    #[test]
    fn ids_are_stable_slugs_and_unique() {
        assert_eq!(MachineConfig::ppc604_133().id(), "604-133");
        assert_eq!(MachineConfig::ppc603_133_no_l2().id(), "603-133-no-l2");
        assert_eq!(MachineConfig::ppc750_266().id(), "750-266");
        let ids: Vec<String> = MachineConfig::all().iter().map(|m| m.id()).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "slugs collide: {ids:?}");
    }

    #[test]
    fn faster_cores_see_relatively_slower_memory() {
        let slow = MachineConfig::ppc603_133().mem.bus;
        let fast = MachineConfig::ppc603_180().mem.bus;
        assert!(fast.line_fill > slow.line_fill);
    }

    #[test]
    fn fast_board_200_beats_185_in_cycles_despite_higher_clock() {
        let m185 = MachineConfig::ppc604_185().mem.bus;
        let m200 = MachineConfig::ppc604_200().mem.bus;
        assert!(m200.line_fill < m185.line_fill);
    }
}
