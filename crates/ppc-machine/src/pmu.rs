//! A functional model of the PowerPC 604 performance-monitor unit.
//!
//! The paper's whole evaluation (§4) was driven by this block: "low-level
//! statistics with the PPC 604 hardware monitor … counting every TLB and
//! cache miss, whether data or instruction". The real unit is two 32-bit
//! counters (PMC1/PMC2) whose event inputs are selected by fields of the
//! MMCR0 register, with freeze bits gated on privilege state, a threshold
//! comparator for duration events, and a *counter-negative* condition
//! (bit 0, i.e. `pmc >= 0x8000_0000`) that raises the performance-monitor
//! exception — the mechanism every sampling profiler since has been built
//! on: preload a counter with `0x8000_0000 - period`, take the interrupt
//! when it goes negative, record where you were, re-arm.
//!
//! This model keeps the same architecture but sources its events from the
//! counters the simulated machine already maintains ([`MonitorSnapshot`]):
//! the PMU holds the snapshot of its last synchronisation point and advances
//! the PMCs by the selected-event deltas on every [`Pmu::sync`]. The OS side
//! (`kernel-sim`) decides *when* to sync — at every span transition, which
//! is this simulator's notion of an instruction boundary — and delivers the
//! exception when [`Pmu::take_interrupt`] reports one pending.
//!
//! The PMU is pure bookkeeping: nothing here charges cycles or touches
//! MMU/cache state. The *cost* of taking the performance-monitor exception
//! is modeled by the kernel, exactly as the real handler's cost was borne by
//! the kernel being measured.

use crate::monitor::MonitorSnapshot;

/// The counter-negative boundary: a PMC with bit 0 (IBM numbering) set,
/// i.e. value `>= 0x8000_0000`, is "negative" and can raise the
/// performance-monitor exception.
pub const PMC_NEGATIVE: u32 = 0x8000_0000;

/// Event selections for a performance-monitor counter.
///
/// The real 604 encodes these as 6/7-bit select fields in MMCR0; the model
/// names them. Every event is derived from counters the machine already
/// observes, so PMU readings agree with [`MonitorSnapshot`] deltas by
/// construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PmcEvent {
    /// Count nothing (the select value 0 of the real unit).
    #[default]
    None,
    /// Processor cycles.
    Cycles,
    /// Instructions-completed proxy: the machine does not retire discrete
    /// instructions, so the closest observable is total memory references
    /// (I-side + D-side cache accesses plus cache-inhibited accesses).
    InsnsProxy,
    /// Instruction-TLB misses.
    ItlbMiss,
    /// Data-TLB misses.
    DtlbMiss,
    /// TLB misses, both sides (the paper's headline §4 count).
    TlbMissBoth,
    /// Instruction-cache misses.
    IcacheMiss,
    /// Data-cache misses.
    DcacheMiss,
    /// Cache misses, both sides.
    CacheMissBoth,
    /// Instruction accesses satisfied by a BAT (§5.1's "for free" hits).
    IbatHit,
    /// Data accesses satisfied by a BAT.
    DbatHit,
    /// BAT hits, both sides.
    BatHitBoth,
    /// Duration events exceeding `MMCR0.threshold` cycles (the 604 counts
    /// loads lasting longer than threshold; the model counts instrumented
    /// kernel paths — TLB reloads, page faults, signal deliveries — whose
    /// latency exceeds it, fed by [`Pmu::note_duration`]).
    ThresholdExceeded,
}

impl PmcEvent {
    /// Every selectable event, in a stable order.
    pub const ALL: [PmcEvent; 13] = [
        PmcEvent::None,
        PmcEvent::Cycles,
        PmcEvent::InsnsProxy,
        PmcEvent::ItlbMiss,
        PmcEvent::DtlbMiss,
        PmcEvent::TlbMissBoth,
        PmcEvent::IcacheMiss,
        PmcEvent::DcacheMiss,
        PmcEvent::CacheMissBoth,
        PmcEvent::IbatHit,
        PmcEvent::DbatHit,
        PmcEvent::BatHitBoth,
        PmcEvent::ThresholdExceeded,
    ];

    /// Stable machine-readable name (perf.data and metrics keys).
    pub fn name(self) -> &'static str {
        match self {
            PmcEvent::None => "none",
            PmcEvent::Cycles => "cycles",
            PmcEvent::InsnsProxy => "insns_proxy",
            PmcEvent::ItlbMiss => "itlb_miss",
            PmcEvent::DtlbMiss => "dtlb_miss",
            PmcEvent::TlbMissBoth => "tlb_miss",
            PmcEvent::IcacheMiss => "icache_miss",
            PmcEvent::DcacheMiss => "dcache_miss",
            PmcEvent::CacheMissBoth => "cache_miss",
            PmcEvent::IbatHit => "ibat_hit",
            PmcEvent::DbatHit => "dbat_hit",
            PmcEvent::BatHitBoth => "bat_hit",
            PmcEvent::ThresholdExceeded => "threshold_exceeded",
        }
    }

    /// Parses a [`PmcEvent::name`] back to the event.
    pub fn from_name(name: &str) -> Option<PmcEvent> {
        PmcEvent::ALL.iter().copied().find(|e| e.name() == name)
    }

    /// How many of this event a counter window contains.
    /// [`PmcEvent::ThresholdExceeded`] occurrences arrive discretely through
    /// [`Pmu::note_duration`], not through snapshots, so they count 0 here.
    pub fn count_in(self, d: &MonitorSnapshot) -> u64 {
        match self {
            PmcEvent::None | PmcEvent::ThresholdExceeded => 0,
            PmcEvent::Cycles => d.cycles,
            PmcEvent::InsnsProxy => {
                d.icache.accesses + d.dcache.accesses + d.icache.inhibited + d.dcache.inhibited
            }
            PmcEvent::ItlbMiss => d.itlb.misses,
            PmcEvent::DtlbMiss => d.dtlb.misses,
            PmcEvent::TlbMissBoth => d.itlb.misses + d.dtlb.misses,
            PmcEvent::IcacheMiss => d.icache.misses,
            PmcEvent::DcacheMiss => d.dcache.misses,
            PmcEvent::CacheMissBoth => d.icache.misses + d.dcache.misses,
            PmcEvent::IbatHit => d.ibat_hits,
            PmcEvent::DbatHit => d.dbat_hits,
            PmcEvent::BatHitBoth => d.ibat_hits + d.dbat_hits,
        }
    }
}

/// The monitor-mode control register: event selects and gating bits.
///
/// Field names follow the 604 user's manual: FC freezes both counters
/// unconditionally, FCS freezes them in supervisor state, FCP in problem
/// (user) state, ENINT enables the counter-negative exception, THRESHOLD
/// feeds the duration comparator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mmcr0 {
    /// FC: freeze both counters.
    pub freeze: bool,
    /// FCS: freeze counting while the processor is in supervisor state.
    pub freeze_supervisor: bool,
    /// FCP: freeze counting while the processor is in problem (user) state.
    pub freeze_problem: bool,
    /// ENINT: a counter going negative raises the performance-monitor
    /// exception.
    pub enint: bool,
    /// THRESHOLD: duration events shorter than this many cycles don't count.
    pub threshold: u32,
    /// PMC1SELECT.
    pub pmc1: PmcEvent,
    /// PMC2SELECT.
    pub pmc2: PmcEvent,
}

impl Default for Mmcr0 {
    fn default() -> Self {
        Self {
            freeze: false,
            freeze_supervisor: false,
            freeze_problem: false,
            enint: false,
            threshold: 0,
            pmc1: PmcEvent::None,
            pmc2: PmcEvent::None,
        }
    }
}

impl Mmcr0 {
    /// Whether counting is frozen for the given privilege state.
    pub fn frozen(&self, supervisor: bool) -> bool {
        self.freeze
            || (supervisor && self.freeze_supervisor)
            || (!supervisor && self.freeze_problem)
    }

    /// The event select for counter `i` (0 = PMC1, 1 = PMC2).
    pub fn select(&self, i: usize) -> PmcEvent {
        match i {
            0 => self.pmc1,
            _ => self.pmc2,
        }
    }
}

/// The performance-monitor unit: MMCR0, PMC1/PMC2, and the pending
/// exception latch.
///
/// # Examples
///
/// ```
/// use ppc_machine::pmu::{Mmcr0, PmcEvent, Pmu, PMC_NEGATIVE};
/// use ppc_machine::MonitorSnapshot;
///
/// let mut pmu = Pmu::new(Mmcr0 {
///     pmc1: PmcEvent::Cycles,
///     enint: true,
///     ..Mmcr0::default()
/// });
/// pmu.write_pmc(0, PMC_NEGATIVE - 100); // sample after 100 cycles
/// let window = MonitorSnapshot { cycles: 250, ..MonitorSnapshot::default() };
/// pmu.sync(&window, true);
/// assert!(pmu.take_interrupt());
/// assert_eq!(pmu.read_pmc(0), PMC_NEGATIVE - 100 + 250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pmu {
    /// The control register.
    pub mmcr0: Mmcr0,
    /// PMC1 and PMC2.
    pmc: [u32; 2],
    /// Machine counters at the last [`Pmu::sync`] (the closed edge of the
    /// next counting window).
    base: MonitorSnapshot,
    /// A counter went negative with ENINT set; cleared by
    /// [`Pmu::take_interrupt`].
    pending: bool,
}

impl Pmu {
    /// A PMU with both counters at zero and no base snapshot (counting
    /// windows start from an all-zero machine).
    pub fn new(mmcr0: Mmcr0) -> Self {
        Self {
            mmcr0,
            pmc: [0; 2],
            base: MonitorSnapshot::default(),
            pending: false,
        }
    }

    /// Reads counter `i` (0 = PMC1, 1 = PMC2) — `mfspr`.
    pub fn read_pmc(&self, i: usize) -> u32 {
        self.pmc[i.min(1)]
    }

    /// Writes counter `i` — `mtspr`. Used to preload the sampling counter
    /// with `PMC_NEGATIVE - period`.
    pub fn write_pmc(&mut self, i: usize, v: u32) {
        self.pmc[i.min(1)] = v;
    }

    /// Whether a performance-monitor exception is pending.
    pub fn interrupt_pending(&self) -> bool {
        self.pending
    }

    /// Takes the pending exception (clears the latch). Returns whether one
    /// was pending.
    pub fn take_interrupt(&mut self) -> bool {
        std::mem::take(&mut self.pending)
    }

    /// Clears both counters and the pending latch; the base snapshot and
    /// MMCR0 survive (the real unit's counters are cleared by `mtspr`,
    /// not by reset lines).
    pub fn reset_counters(&mut self) {
        self.pmc = [0; 2];
        self.pending = false;
    }

    /// Synchronises the PMU with the machine's counters: the window
    /// `now - base` is counted into each PMC according to its event select
    /// (unless frozen for `supervisor`), and `base` advances to `now`.
    ///
    /// The privilege state applies to the whole window, so the OS must sync
    /// at privilege transitions for exact gating; the simulator syncs at
    /// every span transition, which bounds the attribution error to one
    /// unbracketed stretch.
    ///
    /// Events are never lost to freezing skew: a frozen window advances
    /// `base` without counting, exactly like the real unit's gated clock.
    pub fn sync(&mut self, now: &MonitorSnapshot, supervisor: bool) {
        let delta = now.delta(&self.base);
        self.base = *now;
        if self.mmcr0.frozen(supervisor) {
            return;
        }
        for i in 0..2 {
            let n = self.mmcr0.select(i).count_in(&delta);
            self.advance(i, n);
        }
    }

    /// Advances the base snapshot to `now` without counting anything — the
    /// handler-frozen window of a real PMU, whose exception handler sets FC
    /// before doing its work so the profiler does not profile itself.
    pub fn skip_to(&mut self, now: &MonitorSnapshot) {
        self.base = *now;
    }

    /// Feeds one duration event (an instrumented path that took `cycles`):
    /// counts into any PMC selecting [`PmcEvent::ThresholdExceeded`] when
    /// the duration exceeds `MMCR0.threshold`.
    pub fn note_duration(&mut self, cycles: u64, supervisor: bool) {
        if self.mmcr0.frozen(supervisor) || cycles <= u64::from(self.mmcr0.threshold) {
            return;
        }
        for i in 0..2 {
            if self.mmcr0.select(i) == PmcEvent::ThresholdExceeded {
                self.advance(i, 1);
            }
        }
    }

    /// How many sampling periods the negative counter `i` has accumulated:
    /// `1 + (pmc - PMC_NEGATIVE) / period` when negative, else 0. The
    /// sample handler uses this to credit the full backlog when exceptions
    /// were held pending through an unbracketed stretch.
    pub fn periods_pending(&self, i: usize, period: u32) -> u64 {
        let v = self.pmc[i.min(1)];
        if v < PMC_NEGATIVE || period == 0 {
            0
        } else {
            1 + u64::from(v - PMC_NEGATIVE) / u64::from(period)
        }
    }

    fn advance(&mut self, i: usize, n: u64) {
        if n == 0 {
            return;
        }
        let old = self.pmc[i];
        let new_wide = u64::from(old) + n;
        self.pmc[i] = (new_wide & 0xffff_ffff) as u32;
        // Counter-negative condition: the counter reached or passed the
        // negative boundary inside this window.
        let crossed = old < PMC_NEGATIVE && new_wide >= u64::from(PMC_NEGATIVE);
        if crossed && self.mmcr0.enint {
            self.pending = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_mmu::tlb::TlbStats;

    fn snap(cycles: u64, dtlb_misses: u64) -> MonitorSnapshot {
        MonitorSnapshot {
            cycles,
            dtlb: TlbStats {
                lookups: dtlb_misses * 3,
                hits: dtlb_misses * 2,
                misses: dtlb_misses,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn counts_selected_events_only() {
        let mut p = Pmu::new(Mmcr0 {
            pmc1: PmcEvent::Cycles,
            pmc2: PmcEvent::DtlbMiss,
            ..Mmcr0::default()
        });
        p.sync(&snap(100, 7), true);
        p.sync(&snap(250, 10), false);
        assert_eq!(p.read_pmc(0), 250);
        assert_eq!(p.read_pmc(1), 10);
        assert!(!p.interrupt_pending(), "ENINT off: no exception");
    }

    #[test]
    fn counter_negative_raises_pending_once() {
        let mut p = Pmu::new(Mmcr0 {
            pmc1: PmcEvent::Cycles,
            enint: true,
            ..Mmcr0::default()
        });
        p.write_pmc(0, PMC_NEGATIVE - 10);
        p.sync(&snap(9, 0), true);
        assert!(!p.interrupt_pending(), "still positive");
        p.sync(&snap(25, 0), true);
        assert!(p.take_interrupt());
        assert!(!p.take_interrupt(), "latch cleared");
        // Re-arm and cross again.
        p.write_pmc(0, PMC_NEGATIVE - 5);
        p.sync(&snap(30, 0), true);
        assert!(p.interrupt_pending());
    }

    #[test]
    fn periods_pending_counts_backlog() {
        let mut p = Pmu::new(Mmcr0 {
            pmc1: PmcEvent::Cycles,
            enint: true,
            ..Mmcr0::default()
        });
        p.write_pmc(0, PMC_NEGATIVE - 100);
        // 100 cycles to the boundary + 250 past it = 2 whole extra periods.
        p.sync(&snap(350, 0), true);
        assert_eq!(p.periods_pending(0, 100), 3);
        assert_eq!(p.periods_pending(1, 100), 0);
    }

    #[test]
    fn privilege_freeze_gates_windows() {
        let mut p = Pmu::new(Mmcr0 {
            pmc1: PmcEvent::Cycles,
            freeze_supervisor: true,
            ..Mmcr0::default()
        });
        p.sync(&snap(100, 0), true); // supervisor window: frozen
        assert_eq!(p.read_pmc(0), 0);
        p.sync(&snap(160, 0), false); // user window: counts
        assert_eq!(p.read_pmc(0), 60);
        // The frozen window advanced the base — its cycles are gone, not
        // deferred.
        p.sync(&snap(200, 0), true);
        assert_eq!(p.read_pmc(0), 60);
    }

    #[test]
    fn threshold_filters_duration_events() {
        let mut p = Pmu::new(Mmcr0 {
            pmc2: PmcEvent::ThresholdExceeded,
            threshold: 50,
            ..Mmcr0::default()
        });
        p.note_duration(50, true); // not strictly greater
        p.note_duration(51, true);
        p.note_duration(400, false);
        assert_eq!(p.read_pmc(1), 2);
    }

    #[test]
    fn full_freeze_stops_everything() {
        let mut p = Pmu::new(Mmcr0 {
            freeze: true,
            pmc1: PmcEvent::Cycles,
            pmc2: PmcEvent::ThresholdExceeded,
            enint: true,
            ..Mmcr0::default()
        });
        p.write_pmc(0, PMC_NEGATIVE - 1);
        p.sync(&snap(1000, 50), true);
        p.note_duration(1000, true);
        assert_eq!(p.read_pmc(0), PMC_NEGATIVE - 1);
        assert_eq!(p.read_pmc(1), 0);
        assert!(!p.interrupt_pending());
    }

    #[test]
    fn wrap_around_is_defined() {
        let mut p = Pmu::new(Mmcr0 {
            pmc1: PmcEvent::Cycles,
            ..Mmcr0::default()
        });
        p.write_pmc(0, u32::MAX);
        p.sync(&snap(2, 0), true);
        assert_eq!(p.read_pmc(0), 1, "wraps like the 32-bit register it is");
    }

    #[test]
    fn event_names_round_trip() {
        for e in PmcEvent::ALL {
            assert_eq!(PmcEvent::from_name(e.name()), Some(e));
        }
        assert_eq!(PmcEvent::from_name("bogus"), None);
    }

    #[test]
    fn insns_proxy_counts_all_references() {
        let mut s = MonitorSnapshot::default();
        s.icache.accesses = 10;
        s.dcache.accesses = 20;
        s.dcache.inhibited = 5;
        assert_eq!(PmcEvent::InsnsProxy.count_in(&s), 35);
    }
}
