//! Performance-monitor snapshots.
//!
//! The paper (§4) gathered "low-level statistics with the PPC 604 hardware
//! monitor … counting every TLB and cache miss, whether data or instruction"
//! and used software counters on the 603. [`MonitorSnapshot`] is the
//! simulator's equivalent: a copy of every hardware counter at an instant,
//! with [`MonitorSnapshot::delta`] producing the counts for a measurement
//! window.

use ppc_cache::stats::CacheStats;
use ppc_mmu::tlb::TlbStats;

use crate::Cycles;

/// All hardware counters at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorSnapshot {
    /// Cycle clock.
    pub cycles: Cycles,
    /// Instruction-TLB counters.
    pub itlb: TlbStats,
    /// Data-TLB counters.
    pub dtlb: TlbStats,
    /// Instruction-cache counters.
    pub icache: CacheStats,
    /// Data-cache counters.
    pub dcache: CacheStats,
    /// Instruction accesses satisfied by a BAT.
    pub ibat_hits: u64,
    /// Data accesses satisfied by a BAT.
    pub dbat_hits: u64,
}

impl MonitorSnapshot {
    /// Counter deltas `self - earlier` for a measurement window.
    ///
    /// Every field saturates at zero: consumers such as the PMU feed windows
    /// whose earlier edge may postdate a [`reset_stats`] or arrive out of
    /// order, and a counter window must never underflow into a huge bogus
    /// count.
    ///
    /// [`reset_stats`]: crate::Machine::reset_stats
    pub fn delta(&self, earlier: &MonitorSnapshot) -> MonitorSnapshot {
        fn tlb(a: &TlbStats, b: &TlbStats) -> TlbStats {
            TlbStats {
                lookups: a.lookups.saturating_sub(b.lookups),
                hits: a.hits.saturating_sub(b.hits),
                misses: a.misses.saturating_sub(b.misses),
                reloads: a.reloads.saturating_sub(b.reloads),
                tlbie: a.tlbie.saturating_sub(b.tlbie),
                flush_all: a.flush_all.saturating_sub(b.flush_all),
            }
        }
        MonitorSnapshot {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            itlb: tlb(&self.itlb, &earlier.itlb),
            dtlb: tlb(&self.dtlb, &earlier.dtlb),
            icache: self.icache.delta(&earlier.icache),
            dcache: self.dcache.delta(&earlier.dcache),
            ibat_hits: self.ibat_hits.saturating_sub(earlier.ibat_hits),
            dbat_hits: self.dbat_hits.saturating_sub(earlier.dbat_hits),
        }
    }

    /// Total TLB misses, both sides.
    pub fn tlb_misses(&self) -> u64 {
        self.itlb.misses + self.dtlb.misses
    }

    /// Total cache misses, both sides.
    pub fn cache_misses(&self) -> u64 {
        self.icache.misses + self.dcache.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_every_counter() {
        let a = MonitorSnapshot {
            cycles: 100,
            dtlb: TlbStats {
                lookups: 10,
                hits: 8,
                misses: 2,
                ..Default::default()
            },
            dbat_hits: 5,
            ..Default::default()
        };
        let b = MonitorSnapshot {
            cycles: 250,
            dtlb: TlbStats {
                lookups: 30,
                hits: 25,
                misses: 5,
                ..Default::default()
            },
            dbat_hits: 9,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.cycles, 150);
        assert_eq!(d.dtlb.lookups, 20);
        assert_eq!(d.dtlb.misses, 3);
        assert_eq!(d.dbat_hits, 4);
        assert_eq!(d.tlb_misses(), 3);
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let newer = MonitorSnapshot {
            cycles: 10,
            ibat_hits: 3,
            ..Default::default()
        };
        let older = MonitorSnapshot {
            cycles: 500,
            ibat_hits: 9,
            dtlb: TlbStats {
                misses: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        // Reversed window: every counter clamps to zero.
        let d = newer.delta(&older);
        assert_eq!(d.cycles, 0);
        assert_eq!(d.ibat_hits, 0);
        assert_eq!(d.dtlb.misses, 0);
    }
}
