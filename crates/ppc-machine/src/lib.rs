//! Machine model for the MMU Tricks (OSDI 1999) reproduction.
//!
//! A [`Machine`] combines the `ppc-mmu` front end (segments, BATs, TLBs)
//! with the `ppc-cache` memory system and a cycle accumulator, under a named
//! [`MachineConfig`] corresponding to the boards the paper measured on:
//!
//! | config | CPU | clock | TLB | L1 | reload |
//! |---|---|---|---|---|---|
//! | `ppc603_133` | 603 | 133 MHz | 128 | 8K+8K | software |
//! | `ppc603_180` | 603 | 180 MHz | 128 | 8K+8K | software |
//! | `ppc604_133` | 604 | 133 MHz | 256 | 16K+16K | hardware |
//! | `ppc604_185` | 604 | 185 MHz | 256 | 16K+16K | hardware |
//! | `ppc604_200` | 604 | 200 MHz | 256 | 16K+16K | hardware, fast board |
//!
//! The machine executes *abstract references*: the kernel simulator and the
//! workload generators call [`Machine::data_read_pa`] / [`Machine::exec_code_pa`]
//! and the machine prices each reference through the BAT → TLB → (reload)
//! pipeline and the cache hierarchy. TLB-miss handling is a callback into
//! the OS layer, because that is precisely the part the paper varies.

pub mod config;
pub mod cpu;
pub mod exceptions;
pub mod monitor;
pub mod pmu;
pub mod time;

pub use config::{CpuModel, MachineConfig};
pub use cpu::{Machine, MemRefOutcome, ReloadOutcome};
pub use exceptions::ExceptionCosts;
pub use monitor::MonitorSnapshot;
pub use pmu::{Mmcr0, PmcEvent, Pmu, PMC_NEGATIVE};
pub use time::SimTime;

/// Simulated time, in processor clock cycles.
pub type Cycles = u64;
