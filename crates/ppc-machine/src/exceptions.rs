//! Exception and interrupt cost constants.
//!
//! Every constant here is taken from the paper (§5, §6) or the 603/604
//! user's manuals; they are hardware properties, not OS policy (OS-side path
//! lengths live in `kernel-sim`).

use crate::Cycles;

/// Hardware exception costs for one CPU model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExceptionCosts {
    /// Cycles just to invoke and return from the 603's TLB-miss handler,
    /// excluding the handler body ("It takes 32 cycles simply to invoke and
    /// return from the handler", paper §5). Zero on the 604, which reloads in
    /// hardware.
    pub tlb_miss_invoke_return: Cycles,
    /// Fixed (non-memory) overhead of the 604's hardware hash-table walk:
    /// hash computation and compare logic. The memory accesses are priced
    /// separately through the cache model; together they reach the paper's
    /// "up to 120 instruction cycles and 16 memory accesses".
    pub hw_walk_overhead: Cycles,
    /// Cycles to invoke the software handler when the hardware walk fails
    /// ("at least 91 more cycles to just invoke the handler", paper §5).
    pub htab_miss_interrupt: Cycles,
    /// General exception entry (syscall, external interrupt): vector
    /// redirect, MSR swap, pipeline refill.
    pub exception_entry: Cycles,
    /// General exception exit (`rfi` and pipeline refill).
    pub exception_exit: Cycles,
}

impl ExceptionCosts {
    /// PowerPC 603 costs (software TLB reload).
    pub fn ppc603() -> Self {
        Self {
            tlb_miss_invoke_return: 32,
            hw_walk_overhead: 0,
            htab_miss_interrupt: 0,
            exception_entry: 20,
            exception_exit: 16,
        }
    }

    /// PowerPC 604 costs (hardware hash-table walk).
    pub fn ppc604() -> Self {
        Self {
            tlb_miss_invoke_return: 0,
            hw_walk_overhead: 24,
            htab_miss_interrupt: 91,
            exception_entry: 22,
            exception_exit: 18,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(ExceptionCosts::ppc603().tlb_miss_invoke_return, 32);
        assert_eq!(ExceptionCosts::ppc604().htab_miss_interrupt, 91);
    }

    #[test]
    fn each_model_uses_its_own_reload_style() {
        assert_eq!(ExceptionCosts::ppc604().tlb_miss_invoke_return, 0);
        assert_eq!(ExceptionCosts::ppc603().htab_miss_interrupt, 0);
    }
}
