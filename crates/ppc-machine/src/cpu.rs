//! The machine: MMU + memory system + cycle accumulator.

use ppc_cache::hierarchy::MemSystem;
use ppc_mmu::addr::{PhysAddr, VirtualAddress, PAGE_SIZE};
use ppc_mmu::translate::Mmu;

use crate::config::MachineConfig;
use crate::monitor::MonitorSnapshot;
use crate::pmu::Pmu;
use crate::time::SimTime;
use crate::Cycles;

/// Outcome of a memory reference at the machine level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRefOutcome {
    /// Translated and performed.
    Done {
        /// Physical address accessed.
        pa: PhysAddr,
    },
    /// The TLB missed and no reload source resolved it: a page fault the OS
    /// must service.
    Fault {
        /// The faulting virtual address.
        va: VirtualAddress,
    },
}

/// What a TLB-miss reload found, reported by the OS layer back to the
/// experiment harness for counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReloadOutcome {
    /// Found in the hash table (a hash-table hit on a TLB miss).
    HtabHit,
    /// Hash table missed; the Linux page-table tree supplied the PTE.
    LinuxPtHit,
    /// Neither held the mapping: a real page fault.
    PageFault,
}

/// One simulated machine: configuration, MMU state, cache state, and the
/// cycle clock.
///
/// The machine prices accesses but contains no OS policy; the kernel
/// simulator (`kernel-sim`) drives it and implements reload/fault paths.
///
/// # Examples
///
/// ```
/// use ppc_machine::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::ppc604_185());
/// let before = m.cycles;
/// m.data_read_pa(0x4000, true);
/// assert!(m.cycles > before);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    /// The machine's static configuration.
    pub cfg: MachineConfig,
    /// MMU front end (segments, BATs, TLBs).
    pub mmu: Mmu,
    /// Memory hierarchy (L1 caches + bus).
    pub mem: MemSystem,
    /// The cycle clock.
    pub cycles: Cycles,
    /// The performance-monitor unit (paper §4's 604 hardware monitor).
    /// `None` on machines not being monitored — the PMU is pure bookkeeping
    /// and never changes timing, so absence and presence are cycle-identical.
    pub pmu: Option<Pmu>,
}

impl Machine {
    /// Builds a cold machine (empty TLBs and caches, cycle clock at zero).
    pub fn new(cfg: MachineConfig) -> Self {
        Self {
            cfg,
            mmu: Mmu::new(cfg.mmu),
            mem: MemSystem::new(cfg.mem),
            cycles: 0,
            pmu: None,
        }
    }

    /// Synchronises the PMU (if installed) with the machine counters: the
    /// window since the last sync is counted into the PMCs under the given
    /// privilege state. A no-op without a PMU.
    pub fn pmu_sync(&mut self, supervisor: bool) {
        if self.pmu.is_some() {
            let now = self.snapshot();
            if let Some(pmu) = self.pmu.as_mut() {
                pmu.sync(&now, supervisor);
            }
        }
    }

    /// Adds raw cycles (pipeline work not tied to a memory reference).
    pub fn charge(&mut self, cycles: Cycles) {
        // Host-profiler phase hook: the charge phase lives in ppc-mmu's host
        // module (the lowest crate both this one and the profiler can see).
        let _host = ppc_mmu::host::span(ppc_mmu::host::PHASE_CHARGE);
        self.cycles += cycles;
    }

    /// Executes `n` straight-line instructions whose fetch traffic is already
    /// accounted (or negligible): 1 cycle each.
    pub fn exec_insns(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Performs a data read at a known physical address.
    pub fn data_read_pa(&mut self, pa: PhysAddr, cached: bool) -> Cycles {
        let c = self.mem.data_read(pa, cached);
        self.cycles += c;
        c
    }

    /// Performs a data write at a known physical address.
    pub fn data_write_pa(&mut self, pa: PhysAddr, cached: bool) -> Cycles {
        let c = self.mem.data_write(pa, cached);
        self.cycles += c;
        c
    }

    /// Fetches instructions from a known physical address, one access per
    /// cache line covered by `n_insns` 4-byte instructions, plus 1 cycle per
    /// instruction of pipeline work.
    pub fn exec_code_pa(&mut self, pa: PhysAddr, n_insns: u32, cached: bool) -> Cycles {
        let line = self.mem.icache.config().line_bytes;
        let bytes = n_insns * 4;
        let mut fetched = 0;
        let mut a = pa & !(line - 1);
        while a < pa + bytes {
            fetched += self.mem.insn_fetch(a, cached);
            a += line;
        }
        let total = fetched + n_insns as Cycles;
        self.cycles += total;
        total
    }

    /// Zeroes one page at `page_pa`, through or around the cache (paper §9).
    pub fn zero_page_pa(&mut self, page_pa: PhysAddr, through_cache: bool) -> Cycles {
        let c = self.mem.zero_page(page_pa, PAGE_SIZE, through_cache);
        self.cycles += c;
        c
    }

    /// Zeroes one page with ordinary cached stores (the non-`dcbz`
    /// `clear_page()` the paper's kernel used, §9).
    pub fn zero_page_stores_pa(&mut self, page_pa: PhysAddr) -> Cycles {
        let c = self.mem.zero_page_stores(page_pa, PAGE_SIZE);
        self.cycles += c;
        c
    }

    /// Copies `bytes` between two physical regions through the data cache
    /// (read each source line, write each destination line), modelling
    /// kernel `copy_to/from_user` and pipe buffer copies. Costs loop cycles
    /// plus the cache traffic.
    pub fn copy_pa(&mut self, src: PhysAddr, dst: PhysAddr, bytes: u32, cached: bool) -> Cycles {
        let line = self.mem.dcache.config().line_bytes;
        let mut c: Cycles = 0;
        let mut off = 0;
        while off < bytes {
            c += self.mem.data_read(src + off, cached);
            c += self.mem.data_write(dst + off, cached);
            // Two loop iterations of address arithmetic per line.
            c += 2;
            off += line;
        }
        self.cycles += c;
        c
    }

    /// The current simulated time.
    pub fn time(&self) -> SimTime {
        SimTime::new(self.cycles, self.cfg.clock_mhz)
    }

    /// Converts a cycle delta to time on this machine's clock.
    pub fn time_of(&self, cycles: Cycles) -> SimTime {
        SimTime::new(cycles, self.cfg.clock_mhz)
    }

    /// Snapshot of every hardware counter (the 604 performance monitor /
    /// 603 software counters, paper §4).
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            cycles: self.cycles,
            itlb: *self.mmu.itlb.stats(),
            dtlb: *self.mmu.dtlb.stats(),
            icache: *self.mem.icache.stats(),
            dcache: *self.mem.dcache.stats(),
            ibat_hits: self.mmu.bats.ibat_hits,
            dbat_hits: self.mmu.bats.dbat_hits,
        }
    }

    /// Clears all statistics counters (but not TLB/cache *state*), so an
    /// experiment can measure a steady-state window.
    pub fn reset_stats(&mut self) {
        self.mmu.itlb.reset_stats();
        self.mmu.dtlb.reset_stats();
        self.mem.reset_stats();
        self.mmu.bats.ibat_hits = 0;
        self.mmu.bats.dbat_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn exec_code_charges_fetch_plus_pipeline() {
        let mut m = Machine::new(MachineConfig::ppc603_133());
        // 16 instructions = 64 bytes = 2 cache lines, cold.
        let c = m.exec_code_pa(0x1000, 16, true);
        let fill = m.mem.bus.line_fill;
        assert_eq!(c, 2 * fill + 16);
        // Second run hits the icache.
        let c2 = m.exec_code_pa(0x1000, 16, true);
        assert_eq!(c2, 2 * m.mem.icache.config().hit_cycles + 16);
    }

    #[test]
    fn exec_code_unaligned_start_spans_extra_line() {
        let mut m = Machine::new(MachineConfig::ppc603_133());
        // 8 instructions starting 16 bytes into a line cover 2 lines.
        m.exec_code_pa(0x1010, 8, true);
        assert_eq!(m.mem.icache.stats().misses, 2);
    }

    #[test]
    fn copy_reads_source_and_writes_destination() {
        let mut m = Machine::new(MachineConfig::ppc604_185());
        m.copy_pa(0x10000, 0x20000, 4096, true);
        let d = m.mem.dcache.stats();
        assert_eq!(d.accesses, 2 * 4096 / 32);
        assert!(m.mem.dcache.contains(0x10000));
        assert!(m.mem.dcache.contains(0x20000));
    }

    #[test]
    fn zero_page_cached_vs_uncached() {
        let mut a = Machine::new(MachineConfig::ppc603_133());
        let mut b = Machine::new(MachineConfig::ppc603_133());
        a.zero_page_pa(0x4000, true);
        b.zero_page_pa(0x4000, false);
        assert!(a.mem.dcache.resident_lines() > 0);
        assert_eq!(b.mem.dcache.resident_lines(), 0);
    }

    #[test]
    fn snapshot_delta_counts_window() {
        let mut m = Machine::new(MachineConfig::ppc604_185());
        m.data_read_pa(0, true);
        let s1 = m.snapshot();
        m.data_read_pa(0x10000, true);
        let s2 = m.snapshot();
        let d = s2.delta(&s1);
        assert_eq!(d.dcache.accesses, 1);
        assert!(d.cycles > 0);
    }

    #[test]
    fn time_uses_machine_clock() {
        let mut m = Machine::new(MachineConfig::ppc604_200());
        m.charge(200);
        assert!((m.time().as_us() - 1.0).abs() < 1e-12);
    }
}
