//! The machine: MMU + memory system + cycle accumulator.

use ppc_cache::hierarchy::MemSystem;
use ppc_cache::AccessKind;
use ppc_mmu::addr::{phys, EffectiveAddress, PhysAddr, VirtualAddress, PAGE_SIZE};
use ppc_mmu::translate::Mmu;

use crate::config::MachineConfig;
use crate::monitor::MonitorSnapshot;
use crate::pmu::Pmu;
use crate::time::SimTime;
use crate::Cycles;

/// Outcome of a memory reference at the machine level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRefOutcome {
    /// Translated and performed.
    Done {
        /// Physical address accessed.
        pa: PhysAddr,
    },
    /// The TLB missed and no reload source resolved it: a page fault the OS
    /// must service.
    Fault {
        /// The faulting virtual address.
        va: VirtualAddress,
    },
}

/// What a TLB-miss reload found, reported by the OS layer back to the
/// experiment harness for counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReloadOutcome {
    /// Found in the hash table (a hash-table hit on a TLB miss).
    HtabHit,
    /// Hash table missed; the Linux page-table tree supplied the PTE.
    LinuxPtHit,
    /// Neither held the mapping: a real page fault.
    PageFault,
}

/// One simulated machine: configuration, MMU state, cache state, and the
/// cycle clock.
///
/// The machine prices accesses but contains no OS policy; the kernel
/// simulator (`kernel-sim`) drives it and implements reload/fault paths.
///
/// # Examples
///
/// ```
/// use ppc_machine::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::ppc604_185());
/// let before = m.cycles;
/// m.data_read_pa(0x4000, true);
/// assert!(m.cycles > before);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    /// The machine's static configuration.
    pub cfg: MachineConfig,
    /// MMU front end (segments, BATs, TLBs).
    pub mmu: Mmu,
    /// Memory hierarchy (L1 caches + bus).
    pub mem: MemSystem,
    /// The cycle clock.
    pub cycles: Cycles,
    /// The performance-monitor unit (paper §4's 604 hardware monitor).
    /// `None` on machines not being monitored — the PMU is pure bookkeeping
    /// and never changes timing, so absence and presence are cycle-identical.
    pub pmu: Option<Pmu>,
    /// Causal-profiling charge scale numerator. Every cycle charge is
    /// multiplied by `scale_num/scale_den` (floored) before it reaches the
    /// clock. At the default 1/1 `advance` short-circuits, so an unscaled
    /// machine is bit-for-bit identical to one that never heard of scaling.
    scale_num: u64,
    /// Causal-profiling charge scale denominator (never zero).
    scale_den: u64,
}

impl Machine {
    /// Builds a cold machine (empty TLBs and caches, cycle clock at zero).
    pub fn new(cfg: MachineConfig) -> Self {
        Self {
            cfg,
            mmu: Mmu::new(cfg.mmu),
            mem: MemSystem::new(cfg.mem),
            cycles: 0,
            pmu: None,
            scale_num: 1,
            scale_den: 1,
        }
    }

    /// Sets the causal charge scale: subsequent charges advance the clock by
    /// `floor(c * num / den)` instead of `c`. Only the clock is scaled —
    /// cache and TLB state evolve exactly as in an unscaled run, which is
    /// what makes a scaled run an exact what-if rather than a model fit.
    pub fn set_scale(&mut self, num: u64, den: u64) {
        assert!(den != 0, "charge scale denominator must be nonzero");
        self.scale_num = num;
        self.scale_den = den;
    }

    /// The current causal charge scale as `(num, den)`.
    pub fn scale(&self) -> (u64, u64) {
        (self.scale_num, self.scale_den)
    }

    /// Advances the clock by `c` through the causal multiplier and returns
    /// the cycles actually charged, so callers' returned costs always match
    /// observed clock deltas. Each charge floors independently (no remainder
    /// carry) — memoryless, hence deterministic, and exact at 1/1 and at
    /// num = 0, the two cases the identity and zeroing gates rely on.
    #[inline]
    fn advance(&mut self, c: Cycles) -> Cycles {
        let c = if self.scale_num == self.scale_den {
            c
        } else {
            ((c as u128 * self.scale_num as u128) / self.scale_den as u128) as Cycles
        };
        self.cycles += c;
        c
    }

    /// Synchronises the PMU (if installed) with the machine counters: the
    /// window since the last sync is counted into the PMCs under the given
    /// privilege state. A no-op without a PMU.
    pub fn pmu_sync(&mut self, supervisor: bool) {
        if self.pmu.is_some() {
            let now = self.snapshot();
            if let Some(pmu) = self.pmu.as_mut() {
                pmu.sync(&now, supervisor);
            }
        }
    }

    /// Adds raw cycles (pipeline work not tied to a memory reference).
    pub fn charge(&mut self, cycles: Cycles) {
        // Host-profiler charge phase, reported as a batched count (the
        // charge phase lives in ppc-mmu's host module, the lowest crate
        // both this one and the profiler can see). `charge` allocates
        // nothing and nests no spans, so the RAII guard's thread-phase
        // bookkeeping buys no attribution — the exact count is all the
        // deterministic artifact needs.
        ppc_mmu::host::bulk(0, 0, 1);
        self.advance(cycles);
    }

    /// Advances the clock by `cycles` of pure *elapsed time* — waiting on
    /// something external (an I/O stall), not work the CPU performs.
    /// Deliberately bypasses the causal charge scale: a virtual speedup can
    /// make work cheaper, but it cannot make a device answer sooner. With
    /// the scale at its 1/1 default this is exactly [`Machine::charge`]
    /// minus the host-profiler hook.
    pub fn wait(&mut self, cycles: Cycles) {
        self.cycles += cycles;
    }

    /// Executes `n` straight-line instructions whose fetch traffic is already
    /// accounted (or negligible): 1 cycle each.
    pub fn exec_insns(&mut self, n: u64) {
        self.advance(n);
    }

    /// Performs a data read at a known physical address.
    pub fn data_read_pa(&mut self, pa: PhysAddr, cached: bool) -> Cycles {
        let c = self.mem.data_read(pa, cached);
        self.advance(c)
    }

    /// Performs a data write at a known physical address.
    pub fn data_write_pa(&mut self, pa: PhysAddr, cached: bool) -> Cycles {
        let c = self.mem.data_write(pa, cached);
        self.advance(c)
    }

    /// The fused fast path for one data reference (DESIGN.md §16): BAT or
    /// TLB hit, cacheable, protection-clean, charge scale 1/1 — one flat
    /// function instead of the layered
    /// `Mmu::translate` → `Machine::charge` → `data_read_pa`/`data_write_pa`
    /// chain, committing *identical* state transitions (clock, TLB/BAT/cache
    /// counters, LRU, dirty bits) in the same order.
    ///
    /// Returns `None` — with **no** state mutated — whenever any fast-path
    /// condition fails (charge scale engaged, BAT/TLB translation missing or
    /// uncached, store through a read-only entry), so the caller's layered
    /// path re-runs the access and counts it exactly once. Once translation
    /// has committed, a cache miss no longer bails: the miss tail delegates
    /// to the real [`Machine::charge`] + [`Machine::data_read_pa`] /
    /// [`Machine::data_write_pa`], which handle fills, evictions, and
    /// writebacks — and open the real host-profiler spans. On the all-hit
    /// path the per-access RAII spans are replaced by one exact
    /// `ppc_mmu::host::bulk(1, 1, 1)` count.
    pub fn fused_data_ref(&mut self, ea: EffectiveAddress, write: bool) -> Option<Cycles> {
        if self.scale_num != self.scale_den {
            return None;
        }
        let pa = match self.mmu.bats.peek_data(ea) {
            Some((pa, cached)) => {
                if !cached {
                    return None;
                }
                self.mmu.bats.dbat_hits += 1;
                pa
            }
            None => {
                let va = self.mmu.segments.translate(ea);
                let (idx, e) = self.mmu.dtlb.peek(va.vsid, va.page_index)?;
                if !e.cached || (write && !e.writable) {
                    return None;
                }
                self.mmu.dtlb.commit_hit(idx);
                phys(e.rpn, va.offset)
            }
        };
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        match self.mem.dcache.fast_hit(pa, kind) {
            Some(wrote_through) => {
                let mut cost = self.mem.dcache.config().hit_cycles;
                if wrote_through {
                    cost += self.mem.bus.write_beat;
                }
                ppc_mmu::host::bulk(1, 1, 1);
                self.cycles += 1 + cost;
                Some(1 + cost)
            }
            None => {
                // Translation is committed; only the translate span was
                // skipped. The layered tail does the rest for real.
                ppc_mmu::host::bulk(1, 0, 0);
                self.charge(1);
                let c = if write {
                    self.data_write_pa(pa, true)
                } else {
                    self.data_read_pa(pa, true)
                };
                Some(1 + c)
            }
        }
    }

    /// The fused fast path for a straight-line instruction fetch within one
    /// page: the I-side twin of [`Machine::fused_data_ref`]. Same bail-out
    /// contract (`None` mutates nothing); after the translation commits,
    /// lines that hit use the flat probe and lines that miss take the real
    /// [`MemSystem::insn_fetch`] fill path, each opening its own cache span.
    ///
    /// # Panics
    ///
    /// Panics if the fetch crosses a page boundary (callers split at pages,
    /// exactly like the layered `exec_code` loop).
    pub fn fused_exec_code(&mut self, ea: EffectiveAddress, n_insns: u32) -> Option<Cycles> {
        if self.scale_num != self.scale_den {
            return None;
        }
        let pa = match self.mmu.bats.peek_insn(ea) {
            Some((pa, cached)) => {
                if !cached {
                    return None;
                }
                self.mmu.bats.ibat_hits += 1;
                pa
            }
            None => {
                let va = self.mmu.segments.translate(ea);
                let (idx, e) = self.mmu.itlb.peek(va.vsid, va.page_index)?;
                if !e.cached {
                    return None;
                }
                self.mmu.itlb.commit_hit(idx);
                phys(e.rpn, va.offset)
            }
        };
        let bytes = n_insns * 4;
        assert!(
            (pa & (PAGE_SIZE - 1)) + bytes <= PAGE_SIZE,
            "fused fetch must not cross a page"
        );
        let line = self.mem.icache.config().line_bytes;
        let hit_cycles = self.mem.icache.config().hit_cycles;
        let mut fetched: Cycles = 0;
        let mut fast_lines: u64 = 0;
        let mut a = pa & !(line - 1);
        while a < pa + bytes {
            if self.mem.icache.fast_hit(a, AccessKind::Read).is_some() {
                fetched += hit_cycles;
                fast_lines += 1;
            } else {
                fetched += self.mem.insn_fetch(a, true);
            }
            a += line;
        }
        // One translate span; `exec_code_pa` never opens a charge span.
        ppc_mmu::host::bulk(1, fast_lines, 0);
        let total = fetched + n_insns as Cycles;
        self.cycles += total;
        Some(total)
    }

    /// Fetches instructions from a known physical address, one access per
    /// cache line covered by `n_insns` 4-byte instructions, plus 1 cycle per
    /// instruction of pipeline work.
    pub fn exec_code_pa(&mut self, pa: PhysAddr, n_insns: u32, cached: bool) -> Cycles {
        let line = self.mem.icache.config().line_bytes;
        let bytes = n_insns * 4;
        let mut fetched = 0;
        let mut a = pa & !(line - 1);
        while a < pa + bytes {
            fetched += self.mem.insn_fetch(a, cached);
            a += line;
        }
        let total = fetched + n_insns as Cycles;
        self.advance(total)
    }

    /// Zeroes one page at `page_pa`, through or around the cache (paper §9).
    pub fn zero_page_pa(&mut self, page_pa: PhysAddr, through_cache: bool) -> Cycles {
        let c = self.mem.zero_page(page_pa, PAGE_SIZE, through_cache);
        self.advance(c)
    }

    /// Zeroes one page with ordinary cached stores (the non-`dcbz`
    /// `clear_page()` the paper's kernel used, §9).
    pub fn zero_page_stores_pa(&mut self, page_pa: PhysAddr) -> Cycles {
        let c = self.mem.zero_page_stores(page_pa, PAGE_SIZE);
        self.advance(c)
    }

    /// Copies `bytes` between two physical regions through the data cache
    /// (read each source line, write each destination line), modelling
    /// kernel `copy_to/from_user` and pipe buffer copies. Costs loop cycles
    /// plus the cache traffic.
    pub fn copy_pa(&mut self, src: PhysAddr, dst: PhysAddr, bytes: u32, cached: bool) -> Cycles {
        if cached {
            let c = self.mem.copy_range(src, dst, bytes);
            return self.advance(c);
        }
        let line = self.mem.dcache.config().line_bytes;
        let mut c: Cycles = 0;
        let mut off = 0;
        while off < bytes {
            c += self.mem.data_read(src + off, cached);
            c += self.mem.data_write(dst + off, cached);
            // Two loop iterations of address arithmetic per line.
            c += 2;
            off += line;
        }
        self.advance(c)
    }

    /// The current simulated time.
    pub fn time(&self) -> SimTime {
        SimTime::new(self.cycles, self.cfg.clock_mhz)
    }

    /// Converts a cycle delta to time on this machine's clock.
    pub fn time_of(&self, cycles: Cycles) -> SimTime {
        SimTime::new(cycles, self.cfg.clock_mhz)
    }

    /// Snapshot of every hardware counter (the 604 performance monitor /
    /// 603 software counters, paper §4).
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            cycles: self.cycles,
            itlb: *self.mmu.itlb.stats(),
            dtlb: *self.mmu.dtlb.stats(),
            icache: *self.mem.icache.stats(),
            dcache: *self.mem.dcache.stats(),
            ibat_hits: self.mmu.bats.ibat_hits,
            dbat_hits: self.mmu.bats.dbat_hits,
        }
    }

    /// Clears all statistics counters (but not TLB/cache *state*), so an
    /// experiment can measure a steady-state window.
    pub fn reset_stats(&mut self) {
        self.mmu.itlb.reset_stats();
        self.mmu.dtlb.reset_stats();
        self.mem.reset_stats();
        self.mmu.bats.ibat_hits = 0;
        self.mmu.bats.dbat_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn exec_code_charges_fetch_plus_pipeline() {
        let mut m = Machine::new(MachineConfig::ppc603_133());
        // 16 instructions = 64 bytes = 2 cache lines, cold.
        let c = m.exec_code_pa(0x1000, 16, true);
        let fill = m.mem.bus.line_fill;
        assert_eq!(c, 2 * fill + 16);
        // Second run hits the icache.
        let c2 = m.exec_code_pa(0x1000, 16, true);
        assert_eq!(c2, 2 * m.mem.icache.config().hit_cycles + 16);
    }

    #[test]
    fn exec_code_unaligned_start_spans_extra_line() {
        let mut m = Machine::new(MachineConfig::ppc603_133());
        // 8 instructions starting 16 bytes into a line cover 2 lines.
        m.exec_code_pa(0x1010, 8, true);
        assert_eq!(m.mem.icache.stats().misses, 2);
    }

    #[test]
    fn copy_reads_source_and_writes_destination() {
        let mut m = Machine::new(MachineConfig::ppc604_185());
        m.copy_pa(0x10000, 0x20000, 4096, true);
        let d = m.mem.dcache.stats();
        assert_eq!(d.accesses, 2 * 4096 / 32);
        assert!(m.mem.dcache.contains(0x10000));
        assert!(m.mem.dcache.contains(0x20000));
    }

    #[test]
    fn zero_page_cached_vs_uncached() {
        let mut a = Machine::new(MachineConfig::ppc603_133());
        let mut b = Machine::new(MachineConfig::ppc603_133());
        a.zero_page_pa(0x4000, true);
        b.zero_page_pa(0x4000, false);
        assert!(a.mem.dcache.resident_lines() > 0);
        assert_eq!(b.mem.dcache.resident_lines(), 0);
    }

    #[test]
    fn snapshot_delta_counts_window() {
        let mut m = Machine::new(MachineConfig::ppc604_185());
        m.data_read_pa(0, true);
        let s1 = m.snapshot();
        m.data_read_pa(0x10000, true);
        let s2 = m.snapshot();
        let d = s2.delta(&s1);
        assert_eq!(d.dcache.accesses, 1);
        assert!(d.cycles > 0);
    }

    #[test]
    fn scale_halves_charges_and_returns_charged_amount() {
        let mut m = Machine::new(MachineConfig::ppc604_185());
        m.set_scale(1, 2);
        let before = m.cycles;
        m.charge(100);
        assert_eq!(m.cycles - before, 50);
        // Returned cost equals the clock delta, not the unscaled cost.
        let c0 = m.cycles;
        let c = m.data_read_pa(0x4000, true);
        assert_eq!(c, m.cycles - c0);
    }

    /// A machine with one resident, writable, cached data+insn translation
    /// for page 3 (rpn 0x40), ready for fast-path probes.
    fn resident(cfg: MachineConfig) -> Machine {
        use ppc_mmu::tlb::TlbEntry;
        use ppc_mmu::translate::AccessType;
        let mut m = Machine::new(cfg);
        let e = TlbEntry {
            vsid: ppc_mmu::addr::Vsid::new(0),
            page_index: 3,
            rpn: 0x40,
            cached: true,
            writable: true,
        };
        m.mmu.reload(AccessType::DataRead, e);
        m.mmu.reload(AccessType::InsnFetch, e);
        m
    }

    #[test]
    fn fused_data_ref_matches_layered_on_hits_and_misses() {
        use ppc_mmu::translate::{AccessType, Translation};
        for write in [false, true] {
            let mut f = resident(MachineConfig::ppc604_133());
            let mut l = resident(MachineConfig::ppc604_133());
            let ea = EffectiveAddress(3 << 12 | 0x40);
            // First access: translation hits, cache misses (fused tail
            // delegates); second: everything hits (flat fused path).
            for _ in 0..2 {
                let cf = f.fused_data_ref(ea, write).expect("resident page must fuse");
                let (pa, cached) = match l.mmu.translate(ea, AccessType::DataRead) {
                    Translation::TlbHit { pa, cached, .. } => (pa, cached),
                    t => panic!("layered reference must TLB-hit, got {t:?}"),
                };
                l.charge(1);
                let cl = 1 + if write {
                    l.data_write_pa(pa, cached)
                } else {
                    l.data_read_pa(pa, cached)
                };
                assert_eq!(cf, cl, "fused cost diverged (write={write})");
                assert_eq!(f.snapshot(), l.snapshot(), "counters diverged (write={write})");
            }
        }
    }

    #[test]
    fn fused_exec_code_matches_layered() {
        use ppc_mmu::translate::{AccessType, Translation};
        let mut f = resident(MachineConfig::ppc603_133());
        let mut l = resident(MachineConfig::ppc603_133());
        // 16 insns starting 16 bytes into a line: spans 3 lines, cold then
        // warm, exactly like the layered exec_code_pa tests above.
        let ea = EffectiveAddress(3 << 12 | 0x10);
        for _ in 0..2 {
            let cf = f.fused_exec_code(ea, 16).expect("resident page must fuse");
            let (pa, cached) = match l.mmu.translate(ea, AccessType::InsnFetch) {
                Translation::TlbHit { pa, cached, .. } => (pa, cached),
                t => panic!("layered reference must TLB-hit, got {t:?}"),
            };
            let cl = l.exec_code_pa(pa, 16, cached);
            assert_eq!(cf, cl, "fused fetch cost diverged");
            assert_eq!(f.snapshot(), l.snapshot(), "counters diverged");
        }
    }

    #[test]
    fn fused_bails_are_stat_neutral() {
        // TLB miss: nothing resident at page 9.
        let mut m = resident(MachineConfig::ppc604_133());
        let before = m.snapshot();
        assert!(m.fused_data_ref(EffectiveAddress(9 << 12), false).is_none());
        assert!(m.fused_exec_code(EffectiveAddress(9 << 12), 4).is_none());
        assert_eq!(m.snapshot(), before, "a bail must not move any counter");

        // Store through a read-only entry (copy-on-write territory).
        let mut m = Machine::new(MachineConfig::ppc604_133());
        m.mmu.reload(
            ppc_mmu::translate::AccessType::DataRead,
            ppc_mmu::tlb::TlbEntry {
                vsid: ppc_mmu::addr::Vsid::new(0),
                page_index: 3,
                rpn: 0x40,
                cached: true,
                writable: false,
            },
        );
        let before = m.snapshot();
        assert!(m.fused_data_ref(EffectiveAddress(3 << 12), true).is_none());
        assert_eq!(m.snapshot(), before);

        // An engaged causal charge scale forces the layered path entirely.
        let mut m = resident(MachineConfig::ppc604_133());
        m.set_scale(1, 2);
        let before = m.snapshot();
        assert!(m.fused_data_ref(EffectiveAddress(3 << 12), false).is_none());
        assert!(m.fused_exec_code(EffectiveAddress(3 << 12), 4).is_none());
        assert_eq!(m.snapshot(), before);
    }

    #[test]
    fn scale_floors_each_charge_independently() {
        let mut m = Machine::new(MachineConfig::ppc604_185());
        m.set_scale(1, 4);
        // floor(3/4) + floor(3/4) = 0, not floor(6/4) = 1: no remainder carry.
        m.charge(3);
        m.charge(3);
        assert_eq!(m.cycles, 0);
    }

    #[test]
    fn scale_one_to_one_is_identity_and_zero_num_freezes_clock() {
        let mut a = Machine::new(MachineConfig::ppc603_133());
        let mut b = Machine::new(MachineConfig::ppc603_133());
        b.set_scale(7, 7);
        a.exec_code_pa(0x1000, 16, true);
        b.exec_code_pa(0x1000, 16, true);
        assert_eq!(a.cycles, b.cycles);

        let mut z = Machine::new(MachineConfig::ppc603_133());
        z.set_scale(0, 1);
        let c = z.exec_code_pa(0x1000, 16, true);
        assert_eq!((c, z.cycles), (0, 0));
        // Cache state still evolved: only the clock was scaled.
        assert_eq!(z.mem.icache.stats().misses, 2);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn scale_rejects_zero_denominator() {
        let mut m = Machine::new(MachineConfig::ppc604_185());
        m.set_scale(1, 0);
    }

    #[test]
    fn time_uses_machine_clock() {
        let mut m = Machine::new(MachineConfig::ppc604_200());
        m.charge(200);
        assert!((m.time().as_us() - 1.0).abs() < 1e-12);
    }
}
