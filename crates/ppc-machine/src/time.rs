//! Cycle ↔ wall-clock conversion.

use crate::Cycles;

/// A cycle count bound to a clock frequency, convertible to wall-clock time.
///
/// # Examples
///
/// ```
/// use ppc_machine::SimTime;
///
/// let t = SimTime::new(1_330_000, 133);
/// assert_eq!(t.as_us(), 10_000.0);
/// assert_eq!(t.as_ms(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime {
    /// The raw cycle count.
    pub cycles: Cycles,
    /// Clock frequency in MHz.
    pub clock_mhz: u32,
}

impl SimTime {
    /// Binds `cycles` to a clock.
    pub fn new(cycles: Cycles, clock_mhz: u32) -> Self {
        Self { cycles, clock_mhz }
    }

    /// Microseconds.
    pub fn as_us(&self) -> f64 {
        self.cycles as f64 / self.clock_mhz as f64
    }

    /// Milliseconds.
    pub fn as_ms(&self) -> f64 {
        self.as_us() / 1000.0
    }

    /// Seconds.
    pub fn as_secs(&self) -> f64 {
        self.as_us() / 1_000_000.0
    }

    /// Human-readable rendering with an auto-selected unit.
    pub fn pretty(&self) -> String {
        let us = self.as_us();
        if us < 1000.0 {
            format!("{us:.1}us")
        } else if us < 1_000_000.0 {
            format!("{:.2}ms", self.as_ms())
        } else {
            format!("{:.2}s", self.as_secs())
        }
    }
}

/// Computes a throughput in MB/s from bytes moved and the time taken.
pub fn mb_per_sec(bytes: u64, time: SimTime) -> f64 {
    if time.cycles == 0 {
        return 0.0;
    }
    bytes as f64 / (1024.0 * 1024.0) / time.as_secs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let t = SimTime::new(185, 185);
        assert!((t.as_us() - 1.0).abs() < 1e-12);
        let t = SimTime::new(185_000_000, 185);
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pretty_selects_units() {
        assert_eq!(SimTime::new(133, 133).pretty(), "1.0us");
        assert_eq!(SimTime::new(133_000, 133).pretty(), "1.00ms");
        assert_eq!(SimTime::new(133_000_000, 133).pretty(), "1.00s");
    }

    #[test]
    fn throughput() {
        // 1 MiB in 1 second = 1 MB/s.
        let t = SimTime::new(133_000_000, 133);
        assert!((mb_per_sec(1024 * 1024, t) - 1.0).abs() < 1e-9);
        assert_eq!(mb_per_sec(1024, SimTime::new(0, 133)), 0.0);
    }
}
