//! Integration: the paper's quantitative claims, asserted as directions and
//! rough factors on the real experiment runners (quick depth).

use mmu_tricks_repro::mmu_tricks::experiments as ex;
use mmu_tricks_repro::mmu_tricks::Depth;

#[test]
fn table2_mmap_headline_factor() {
    // Paper: 3240 µs → 41 µs (80×) on the 603, 2733 µs → 33 µs on the 604.
    let (cols, _) = ex::table2(Depth::Quick);
    let eager_603 = cols[0].results.mmap_lat_us;
    let lazy_603 = cols[1].results.mmap_lat_us;
    assert!(
        eager_603 / lazy_603 > 20.0,
        "603 mmap ratio {:.0}x must be dramatic (paper: 80x)",
        eager_603 / lazy_603
    );
    assert!(
        eager_603 > 1000.0,
        "eager 603 lat {eager_603:.0} µs should be ms-scale"
    );
    assert!(
        lazy_603 < 200.0,
        "lazy 603 lat {lazy_603:.0} µs should be tens of µs"
    );
}

#[test]
fn table3_full_ordering() {
    let (cols, _) = ex::table3(Depth::Quick);
    let names: Vec<&str> = cols.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names[0], "Linux/PPC");
    // Optimized Linux/PPC wins every latency row against every other OS.
    for other in &cols[1..] {
        assert!(cols[0].results.null_syscall_us < other.results.null_syscall_us);
        assert!(cols[0].results.ctxsw2_us < other.results.ctxsw2_us);
        assert!(cols[0].results.pipe_lat_us < other.results.pipe_lat_us);
        assert!(cols[0].results.pipe_bw_mbs > other.results.pipe_bw_mbs);
    }
    // The paper's "10 to 120 times faster than ... MkLinux" claim, on the
    // most kernel-crossing-bound row.
    let mklinux = &cols[3].results;
    assert!(
        mklinux.null_syscall_us / cols[0].results.null_syscall_us > 8.0,
        "MkLinux null syscall must be ~10x+ slower"
    );
    // Mach pipe bandwidth collapses (paper: 9–15 MB/s vs 52).
    assert!(cols[0].results.pipe_bw_mbs / cols[2].results.pipe_bw_mbs > 3.0);
}

#[test]
fn bat_experiment_directions() {
    let (r, _) = ex::exp_bat(Depth::Quick);
    assert!(
        r.tlb_misses_bat < r.tlb_misses_nobat,
        "BATs reduce TLB misses"
    );
    assert!(
        r.htab_misses_bat <= r.htab_misses_nobat,
        "BATs reduce htab misses"
    );
    assert!(r.wall_ms_bat < r.wall_ms_nobat, "BATs reduce compile time");
    assert!(
        r.kernel_tlb_frac_nobat > 0.05,
        "PTE-mapped kernel occupies real TLB share (got {:.0}%)",
        r.kernel_tlb_frac_nobat * 100.0
    );
    assert!(
        r.kernel_tlb_hwm_bat <= 4,
        "paper: high water of 4 kernel entries"
    );
}

#[test]
fn fast_reload_experiment_directions() {
    let (r, _) = ex::exp_fast_reload(Depth::Quick);
    let ctx = (r.ctxsw_slow_us - r.ctxsw_fast_us) / r.ctxsw_slow_us;
    let pipe = (r.pipe_slow_us - r.pipe_fast_us) / r.pipe_slow_us;
    let user = (r.user_slow_ms - r.user_fast_ms) / r.user_slow_ms;
    assert!(ctx > 0.15, "ctxsw gain {ctx:.2} (paper: 0.33)");
    assert!(pipe > 0.05, "pipe gain {pipe:.2} (paper: 0.15)");
    assert!(user > 0.05, "user gain {user:.2} (paper: 0.15)");
}

#[test]
fn mmap_cutoff_sweep_shape() {
    let (points, _) = ex::exp_mmap_cutoff(Depth::Quick);
    // Cutoffs below the 64-page sweep size take the cheap bump; per-page
    // always and cutoffs >= 64 pay the per-page search.
    let lat_of = |cut: Option<u32>| {
        points
            .iter()
            .find(|p| p.cutoff == cut)
            .expect("sweep point")
            .mmap_lat_us
    };
    assert!(lat_of(Some(20)) < lat_of(None), "cutoff 20 beats per-page");
    assert!(
        lat_of(Some(20)) < lat_of(Some(100)),
        "cutoff past the size is per-page"
    );
    // "at no cost to the TLB hit rate": flat within a point.
    let hit_min = points
        .iter()
        .map(|p| p.tlb_hit_rate)
        .fold(f64::MAX, f64::min);
    let hit_max = points.iter().map(|p| p.tlb_hit_rate).fold(0.0, f64::max);
    assert!(
        hit_max - hit_min < 0.02,
        "TLB hit rate must be flat across cutoffs ({hit_min:.3}..{hit_max:.3})"
    );
}

#[test]
fn page_clear_experiment_directions() {
    let (rows, _) = ex::exp_page_clear(Depth::Quick);
    let on_demand = rows[0].wall_ms;
    let idle_cached = rows[1].wall_ms;
    let no_list = rows[2].wall_ms;
    let idle_uncached = rows[3].wall_ms;
    assert!(
        idle_cached > on_demand,
        "cached idle clearing slows the compile"
    );
    assert!(
        idle_uncached < on_demand,
        "uncached + list speeds the compile"
    );
    assert!(
        (no_list - on_demand).abs() / on_demand < 0.05,
        "uncached clearing without the list is performance-neutral (paper: 'no performance loss or gain')"
    );
}

#[test]
fn cache_pollution_analysis() {
    let (r, _) = ex::exp_cache_pollution(Depth::Quick);
    assert!(
        (28..=40).contains(&r.fill_memory_accesses),
        "worst-case fill accesses {} near the paper's 34",
        r.fill_memory_accesses
    );
    assert!(
        r.compile_misses_uncached_pt < r.compile_misses_cached_pt,
        "uncached page tables must reduce D-cache misses"
    );
}

#[test]
fn figure1_walkthrough_is_complete() {
    let s = ex::translation_walkthrough(0xc012_3456, 0xffff0c, 0x00123);
    for needle in ["SR#c", "VSID", "primary PTEG", "physical address"] {
        assert!(s.contains(needle), "missing {needle} in:\n{s}");
    }
}
