//! Integration: the LmBench suite across machines and kernels, asserting
//! the cross-crate relations the paper's tables rest on.

use mmu_tricks_repro::kernel_sim::{Kernel, KernelConfig};
use mmu_tricks_repro::lmbench::report::{run_suite, SuiteConfig};
use mmu_tricks_repro::lmbench::{bw, lat};
use mmu_tricks_repro::ppc_machine::MachineConfig;

#[test]
fn faster_machines_are_faster_across_the_suite() {
    let slow = run_suite(
        MachineConfig::ppc604_133(),
        KernelConfig::optimized(),
        SuiteConfig::quick(),
    );
    let fast = run_suite(
        MachineConfig::ppc604_200(),
        KernelConfig::optimized(),
        SuiteConfig::quick(),
    );
    assert!(fast.null_syscall_us < slow.null_syscall_us);
    assert!(fast.pipe_lat_us < slow.pipe_lat_us);
    assert!(fast.pipe_bw_mbs > slow.pipe_bw_mbs);
    assert!(fast.file_reread_mbs > slow.file_reread_mbs);
    assert!(fast.mmap_lat_us < slow.mmap_lat_us);
}

#[test]
fn the_604_beats_the_603_at_similar_clock() {
    // Table 1's machine ordering: hardware reloads + double-size caches win.
    let m603 = run_suite(
        MachineConfig::ppc603_180(),
        KernelConfig::optimized(),
        SuiteConfig::quick(),
    );
    let m604 = run_suite(
        MachineConfig::ppc604_185(),
        KernelConfig::optimized(),
        SuiteConfig::quick(),
    );
    assert!(m604.pipe_bw_mbs > m603.pipe_bw_mbs);
    assert!(m604.ctxsw2_us < m603.ctxsw2_us);
}

#[test]
fn no_htab_lets_the_603_close_on_the_604() {
    // §6.2's headline: "we make a 180MHz 603 keep pace with a 185MHz 604".
    // The no-htab 603 must be at least as fast as the htab-emulating 603.
    let with_htab = KernelConfig {
        htab_on_603: true,
        ..KernelConfig::optimized()
    };
    let mut k_htab = Kernel::boot(MachineConfig::ppc603_180(), with_htab);
    let mut k_direct = Kernel::boot(MachineConfig::ppc603_180(), KernelConfig::optimized());
    let p_htab = lat::process_start(&mut k_htab, 4);
    let p_direct = lat::process_start(&mut k_direct, 4);
    assert!(
        p_direct <= p_htab * 1.02,
        "direct reloads ({p_direct:.2} ms) must not lose to htab emulation ({p_htab:.2} ms)"
    );
}

#[test]
fn pipe_bandwidth_exceeds_file_reread() {
    // The paper's tables consistently show pipe bw > file reread: the pipe's
    // working set lives in the board L2 while a big file streams from DRAM.
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    let pipe = bw::pipe_bandwidth(&mut k);
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    let file = bw::file_reread(&mut k);
    assert!(
        pipe > file,
        "pipe bw ({pipe:.0} MB/s) must beat file reread ({file:.0} MB/s)"
    );
}

#[test]
fn every_optimization_off_vs_on_is_a_clean_sweep() {
    let unopt = run_suite(
        MachineConfig::ppc604_133(),
        KernelConfig::unoptimized(),
        SuiteConfig::quick(),
    );
    let opt = run_suite(
        MachineConfig::ppc604_133(),
        KernelConfig::optimized(),
        SuiteConfig::quick(),
    );
    assert!(opt.null_syscall_us < unopt.null_syscall_us);
    assert!(opt.ctxsw2_us < unopt.ctxsw2_us);
    assert!(opt.ctxsw8_us < unopt.ctxsw8_us);
    assert!(opt.pipe_lat_us < unopt.pipe_lat_us);
    assert!(opt.pipe_bw_mbs > unopt.pipe_bw_mbs);
    assert!(opt.file_reread_mbs > unopt.file_reread_mbs);
    assert!(opt.mmap_lat_us < unopt.mmap_lat_us);
    assert!(opt.pstart_ms < unopt.pstart_ms);
    // And by the orders of magnitude the paper claims for the headline rows.
    assert!(unopt.null_syscall_us / opt.null_syscall_us > 4.0);
    assert!(unopt.mmap_lat_us / opt.mmap_lat_us > 20.0);
}

#[test]
fn extended_kernel_still_passes_the_suite() {
    let r = run_suite(
        MachineConfig::ppc604_185(),
        KernelConfig::extended(),
        SuiteConfig::quick(),
    );
    assert!(r.null_syscall_us > 0.0 && r.pipe_bw_mbs > 0.0 && r.pstart_ms > 0.0);
}
