# Shared boilerplate for the tools/*_gate.sh CI gates. Source it first:
#
#     . "$(dirname "$0")/gate_lib.sh"
#
# It sets strict mode, cds to the repo root, creates a temp dir in $out
# (removed on exit), and initializes the $fail accumulator. Helpers mark
# failures with gate_fail and keep going, so one run reports every broken
# check; finish with gate_ok "summary" to exit with the right status.

set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
fail=0

# repro <args...>: the release harness binary, stdout passed through.
repro() {
    cargo run --release -p bench --bin repro -- "$@"
}

# gate_fail <message> [file-to-dump]: report one failed check and keep going.
gate_fail() {
    echo "FAIL: $1" >&2
    if [ -n "${2:-}" ] && [ -f "${2:-}" ]; then
        cat "$2" >&2
    fi
    fail=1
}

# require_keys <file> <key>...: every key must appear in the artifact.
require_keys() {
    local file="$1"
    shift
    local key
    for key in "$@"; do
        if ! grep -q -- "$key" "$file"; then
            gate_fail "$(basename "$file") is missing $key"
        fi
    done
}

# require_contains <file> <pattern> <message>: grep or fail (dumps the file).
require_contains() {
    if ! grep -q -- "$2" "$1"; then
        gate_fail "$3" "$1"
    fi
}

# require_absent <file> <pattern> <message>: inverse of require_contains.
require_absent() {
    if grep -q -- "$2" "$1"; then
        gate_fail "$3" "$1"
    fi
}

# require_byte_identical <a> <b> <what>: the determinism check — two
# recordings of the same artifact must be byte-for-byte equal.
require_byte_identical() {
    if ! cmp -s "$1" "$2"; then
        echo "FAIL: $3" >&2
        diff "$1" "$2" | head -20 >&2 || true
        fail=1
    fi
}

# require_diff_accepts <a> <b>: the artifact must plug into the diff
# surface — `repro diff` parses both sides and renders the identity header.
require_diff_accepts() {
    repro diff "$1" "$2" > "$out/gate_diff.txt"
    if ! grep -q 'config A:' "$out/gate_diff.txt"; then
        gate_fail "repro diff did not accept $(basename "$1") vs $(basename "$2")"
    fi
}

# json_number <file> <key>: the first integer value of "key" in a
# deterministic integer-only artifact (empty if absent).
json_number() {
    grep -o "\"$2\": [0-9-]*" "$1" | head -1 | grep -o -- '[0-9-]*$'
}

# gate_ok <summary>: exit 1 if any check failed, else print the summary.
gate_ok() {
    if [ "$fail" -ne 0 ]; then
        exit 1
    fi
    echo "$1"
}
