#!/usr/bin/env bash
# CI gate for the observability layer: run the traced reference workload,
# check the metrics artifact is complete, and fail if tracing ever charges
# cycles (tracer-on and tracer-off runs must be cycle-identical).
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

cargo run --release -p bench --bin repro -- trace pmu --depth quick \
    --json "$out/metrics.json" --trace-out "$out/trace.json" >/dev/null

fail=0
for key in '"schema"' '"total_cycles"' '"attribution"' '"attribution_total"' \
           '"tlb_reload"' '"page_fault"' '"signal_delivery"' '"stats"' \
           '"pteg"' '"ring"' '"experiments"' '"machine"' '"config"' \
           '"telemetry"' '"epoch_cycles"' '"htab_valid"' '"zombie_ptes"' \
           '"tlb_kernel"' '"htab_hit_ppm"'; do
    if ! grep -q -- "$key" "$out/metrics.json"; then
        echo "FAIL: metrics.json is missing $key" >&2
        fail=1
    fi
done

# The zero-overhead guarantee: the harness ran the same workload with the
# tracer off and on and recorded the cycle difference. Any nonzero value
# means tracing perturbed the simulation. The traced run also carries the
# epoch-telemetry sampler, so this single check gates the whole
# observability stack: trace + telemetry together must be cycle-identical
# to the bare run.
if ! grep -q '"overhead_cycles": 0,' "$out/metrics.json"; then
    echo "FAIL: traced+sampled and bare cycle totals diverge:" >&2
    grep '"overhead_cycles"' "$out/metrics.json" >&2 || true
    fail=1
fi

# The sampler must actually have sampled (a zero-length series would make
# the identity check vacuous).
samples="$(grep -o '"samples": [0-9]*' "$out/metrics.json" | head -1 | grep -o '[0-9]*$')"
if [ -z "$samples" ] || [ "$samples" -lt 1 ]; then
    echo "FAIL: telemetry recorded no epoch samples (got '${samples:-none}')" >&2
    fail=1
fi

if ! grep -q '"traceEvents":\[' "$out/trace.json"; then
    echo "FAIL: trace.json is not a Chrome trace_event document" >&2
    fail=1
fi

# The E-PMU agreement table must ship inside the gated JSON artifact, and
# its counting-only row must prove the PMU never perturbed the run.
if ! grep -q '"E-PMU: sampled vs exact attribution' "$out/metrics.json"; then
    echo "FAIL: metrics.json is missing the E-PMU agreement table" >&2
    fail=1
fi
if ! grep -q '"counting-only".*"identical"' "$out/metrics.json"; then
    echo "FAIL: counting-only PMU run was not cycle-identical" >&2
    grep -o '"counting-only"[^]]*' "$out/metrics.json" >&2 || true
    fail=1
fi

# The PMU-off identity: the bench baseline's trace_ref workload is the same
# reference run with tracing AND the PMU both off. Its cycle total must match
# the traced run's total_cycles exactly — if it doesn't, either the tracer or
# an idle (counting-only) PMU started charging cycles.
cargo run --release -p bench --bin repro -- bench --depth quick \
    --json "$out/bench.json" >/dev/null
traced="$(grep -o '"total_cycles": [0-9]*' "$out/metrics.json" | head -1 | grep -o '[0-9]*$')"
untraced="$(grep -o '"trace_ref": {"cycles": [0-9]*' "$out/bench.json" | grep -o '[0-9]*$')"
if [ -z "$traced" ] || [ -z "$untraced" ] || [ "$traced" != "$untraced" ]; then
    echo "FAIL: PMU-off/trace-off run diverges: traced=$traced untraced=$untraced" >&2
    fail=1
fi

# The perf surface: record a sampled profile and check the report carries
# every headline metric key.
cargo run --release -p bench --bin repro -- perf record --depth quick \
    --workload compile --period 16384 --out "$out/perf.data" >/dev/null
cargo run --release -p bench --bin repro -- perf report \
    --in "$out/perf.data" --folded "$out/perf.folded" > "$out/report.txt"
for key in 'total_cycles ' 'baseline_cycles ' 'sampling_overhead_cycles ' \
           'interrupts ' 'weighted_samples ' 'sampled_share_ppm' \
           'exact_share_ppm'; do
    if ! grep -q -- "$key" "$out/report.txt"; then
        echo "FAIL: perf report is missing $key" >&2
        fail=1
    fi
done
if ! grep -q '^pid[0-9]*;' "$out/perf.folded"; then
    echo "FAIL: folded flamegraph export is empty or malformed" >&2
    fail=1
fi

# perf.data must identify its machine and kernel config (the headers
# `repro perf diff` keys its compatibility refusal on).
if ! grep -q '^machine 604-133$' "$out/perf.data"; then
    echo "FAIL: perf.data is missing its machine header" >&2
    fail=1
fi
if ! grep -q '^config bats=1 ' "$out/perf.data"; then
    echo "FAIL: perf.data is missing its config header" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "trace gate OK: artifacts complete, trace+telemetry overhead = 0, PMU-off identical, perf report complete"
