#!/usr/bin/env bash
# CI gate for the observability layer: run the traced reference workload,
# check the metrics artifact is complete, and fail if tracing ever charges
# cycles (tracer-on and tracer-off runs must be cycle-identical).
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

cargo run --release -p bench --bin repro -- trace --depth quick \
    --json "$out/metrics.json" --trace-out "$out/trace.json" >/dev/null

fail=0
for key in '"schema"' '"total_cycles"' '"attribution"' '"attribution_total"' \
           '"tlb_reload"' '"page_fault"' '"signal_delivery"' '"stats"' \
           '"pteg"' '"ring"' '"experiments"'; do
    if ! grep -q -- "$key" "$out/metrics.json"; then
        echo "FAIL: metrics.json is missing $key" >&2
        fail=1
    fi
done

# The zero-overhead guarantee: the harness ran the same workload with the
# tracer off and on and recorded the cycle difference. Any nonzero value
# means tracing perturbed the simulation.
if ! grep -q '"overhead_cycles": 0,' "$out/metrics.json"; then
    echo "FAIL: tracer-on and tracer-off cycle totals diverge:" >&2
    grep '"overhead_cycles"' "$out/metrics.json" >&2 || true
    fail=1
fi

if ! grep -q '"traceEvents":\[' "$out/trace.json"; then
    echo "FAIL: trace.json is not a Chrome trace_event document" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "trace gate OK: artifacts complete, overhead_cycles = 0"
