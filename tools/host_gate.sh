#!/usr/bin/env bash
# CI gate for the host-side observability layer (`hostprof` + `repro
# hostbench`):
#
# 1. CLI contract: `repro --help` exits 0 and enumerates every registered
#    subcommand and experiment, so the usage text cannot silently rot as
#    subcommands are added.
# 2. Determinism: two hostbench runs in separate processes are
#    byte-identical once the documented `"timing"` section (the only
#    wall-clock-dependent part of the artifact) is stripped.
# 3. Allocation gate (HARD): allocs per 1k simulated cycles, per basket
#    workload, may not regress more than 5% against the committed
#    HOST_BENCH.json baseline. Hot-loop allocation creep fails CI.
# 4. Throughput (HARD): the sim-cycles-per-host-second headline is printed
#    on every run so the log carries a speed history; a drop below 85% of
#    the committed baseline fails the gate. Wall-clock on shared CI
#    machines is noisy, but since the fast-path fusion work the committed
#    headline is far enough above the old layered-path speed that an 85%
#    floor only trips on a real regression (losing the fused path would
#    land near 50%), not on scheduler jitter.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-HOST_BENCH.json}"
if [ ! -f "$baseline" ]; then
    echo "FAIL: baseline artifact $baseline not found" >&2
    exit 1
fi

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

fail=0

# --- 1. the usage text enumerates everything ---------------------------------
if ! cargo run -q --release -p bench --bin repro -- --help > "$out/help.txt"; then
    echo "FAIL: repro --help exited nonzero" >&2
    fail=1
fi
for sub in bench matrix tune report diff chaos perf hostbench; do
    if ! grep -q "^  $sub " "$out/help.txt"; then
        echo "FAIL: repro --help does not list the '$sub' subcommand" >&2
        fail=1
    fi
done
for exp in table1 table2 pressure; do
    if ! grep -q "$exp" "$out/help.txt"; then
        echo "FAIL: repro --help does not list the '$exp' experiment" >&2
        fail=1
    fi
done

# --- 2. cross-process masked determinism -------------------------------------
# Three timing passes, matching the committed baseline's shape: the median
# of three discards the colder first pass, so gate 4 compares like for
# like (the deterministic sections gates 2 and 3 use are pass-count
# independent; the extra passes cost a couple of seconds).
cargo run -q --release -p bench --bin repro -- hostbench --iters 3 \
    --json "$out/hb-a.json" > "$out/run-a.txt"
cargo run -q --release -p bench --bin repro -- hostbench --iters 3 \
    --json "$out/hb-b.json" > /dev/null
sed '/"timing":/,$d' "$out/hb-a.json" > "$out/hb-a.det"
sed '/"timing":/,$d' "$out/hb-b.json" > "$out/hb-b.det"
if ! cmp -s "$out/hb-a.det" "$out/hb-b.det"; then
    echo "FAIL: hostbench deterministic sections differ across processes" >&2
    diff "$out/hb-a.det" "$out/hb-b.det" | head -5 >&2 || true
    fail=1
fi
if ! grep -q '"schema": "mmu-tricks-hostbench-v1"' "$out/hb-a.json"; then
    echo "FAIL: hostbench artifact is missing its schema header" >&2
    fail=1
fi

# --- 3. HARD allocation gate vs the committed baseline -----------------------
# Allocation counts are deterministic (gate 2 proves it), so any increase
# is a real code change, not noise. Budget: 5%.
allocs_per_1k() { # file workload -> milli-allocs per 1k sim cycles
    sed -n "s/.*\"$2\": {.*\"allocs_per_1k_cycles_milli\": \([0-9]*\).*/\1/p" \
        "$1" | head -1
}
for w in compile fault_storm matrix_row chaos_fleet; do
    old=$(allocs_per_1k "$baseline" "$w")
    new=$(allocs_per_1k "$out/hb-a.json" "$w")
    if [ -z "$old" ] || [ -z "$new" ]; then
        echo "FAIL: could not extract allocs_per_1k_cycles_milli for $w" >&2
        fail=1
        continue
    fi
    if [ $((new * 100)) -gt $((old * 105)) ]; then
        echo "FAIL: $w allocates more per simulated cycle than the baseline:" \
             "$new milli-allocs/1k-cycles vs $old (+5% budget)" >&2
        fail=1
    fi
done

# --- 4. HARD throughput headline ---------------------------------------------
cps_of() { # first sim_cycles_per_host_sec in the file = the headline
    sed -n 's/.*"sim_cycles_per_host_sec": \([0-9]*\).*/\1/p' "$1" | head -1
}
base_cps=$(cps_of "$baseline")
new_cps=$(cps_of "$out/hb-a.json")
echo "host_gate headline: $new_cps sim-cycles/host-sec (baseline $base_cps)"
if [ -z "$base_cps" ] || [ -z "$new_cps" ]; then
    echo "FAIL: could not extract the sim_cycles_per_host_sec headline" >&2
    fail=1
elif [ $((new_cps * 100)) -lt $((base_cps * 85)) ]; then
    echo "FAIL: throughput below 85% of the committed baseline" \
         "($new_cps vs $base_cps sim-cycles/host-sec)" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "host gate OK: usage complete, artifact deterministic, allocation and throughput budgets held"
