#!/usr/bin/env bash
# CI gate for the PMU-guided tuning loop (`mmtune` + `repro tune`):
#
# 1. `repro tune` determinism: a serial run and a `--jobs 4` run of the
#    descent emit byte-identical mmu-tricks-tune-v1 artifacts (the whole
#    loop — kernel, controller, descent — is deterministic, and the
#    parallel path must not reorder or perturb it).
# 2. Artifact shape: schema header, all four machine rows, a full config
#    object per row.
# 3. E-TUNE signs, re-checked from the artifact with shell arithmetic: the
#    tuned config strictly beats static opt on at least 2 of 4 machines for
#    the fault storm, and never loses by more than the 2% hysteresis bound
#    anywhere (the descent keeps the baseline in its candidate set, so a
#    loss means descent logic broke).
# 4. `repro etune` renders all gates as "pass".
# 5. Tune artifacts ride the shared diff semantics: self-diff is clean and
#    a tune-vs-bench diff is refused on the schema axis.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

fail=0

# --- 1. determinism ---------------------------------------------------------
cargo run --release -p bench --bin repro -- tune --depth quick \
    --json "$out/tune-a.json" >/dev/null
cargo run --release -p bench --bin repro -- tune --depth quick --jobs 4 \
    --json "$out/tune-b.json" >/dev/null
if ! cmp -s "$out/tune-a.json" "$out/tune-b.json"; then
    echo "FAIL: serial and --jobs 4 repro tune runs are not byte-identical" >&2
    diff "$out/tune-a.json" "$out/tune-b.json" | head -5 >&2 || true
    fail=1
fi

# --- 2. artifact shape ------------------------------------------------------
if ! grep -q '"schema": "mmu-tricks-tune-v1"' "$out/tune-a.json"; then
    echo "FAIL: tune artifact has the wrong schema" >&2
    fail=1
fi
for m in 603-swload 603-nohtab 604-133 604-200; do
    if ! grep -q "\"machine\": \"$m\"" "$out/tune-a.json"; then
        echo "FAIL: tune artifact has no row for machine $m" >&2
        fail=1
    fi
done
for axis in mmtune bats scatter handler flush idle_reclaim page_clearing; do
    if ! grep -q "\"$axis\": \"" "$out/tune-a.json"; then
        echo "FAIL: tune artifact config objects are missing the $axis axis" >&2
        fail=1
    fi
done

# --- 3. E-TUNE signs from the artifact --------------------------------------
wins=0
rows=0
while read -r machine static tuned; do
    rows=$((rows + 1))
    if [ "$((tuned))" -lt "$((static))" ]; then
        wins=$((wins + 1))
    fi
    if [ "$((tuned * 100))" -gt "$((static * 102))" ]; then
        echo "FAIL: tuned config loses past the 2% hysteresis bound on $machine (${static} -> ${tuned})" >&2
        fail=1
    fi
done < <(grep -o '"machine": "[^"]*", "static_cycles": [0-9]*, "tuned_cycles": [0-9]*' "$out/tune-a.json" \
    | sed 's/"machine": "\([^"]*\)", "static_cycles": \([0-9]*\), "tuned_cycles": \([0-9]*\)/\1 \2 \3/')
if [ "$rows" -ne 4 ]; then
    echo "FAIL: expected 4 tune rows, parsed $rows" >&2
    fail=1
fi
if [ "$wins" -lt 2 ]; then
    echo "FAIL: tuned config beats static opt on only $wins of $rows machines (need >= 2)" >&2
    fail=1
else
    echo "tune gate: tuned beats static opt on $wins of $rows machines"
fi

# --- 4. the E-TUNE experiment agrees ----------------------------------------
cargo run --release -p bench --bin repro -- etune --depth quick > "$out/etune.txt"
if grep -q 'FAIL' "$out/etune.txt"; then
    echo "FAIL: repro etune reports a failing gate:" >&2
    grep 'FAIL' "$out/etune.txt" >&2
    fail=1
fi
if ! grep -q 'pass' "$out/etune.txt"; then
    echo "FAIL: repro etune rendered no passing gates:" >&2
    cat "$out/etune.txt" >&2
    fail=1
fi

# --- 5. shared diff semantics -----------------------------------------------
cargo run --release -p bench --bin repro -- diff "$out/tune-a.json" "$out/tune-b.json" \
    --json "$out/tune-diff.json" >/dev/null
if ! grep -q '"changed": 0' "$out/tune-diff.json"; then
    echo "FAIL: tune self-diff reported nonzero changes" >&2
    fail=1
fi
cargo run --release -p bench --bin repro -- bench --depth quick \
    --json "$out/bench.json" >/dev/null
if cargo run --release -p bench --bin repro -- diff \
       "$out/tune-a.json" "$out/bench.json" >/dev/null 2>"$out/refusal.txt"; then
    echo "FAIL: diff accepted a tune artifact against a bench artifact" >&2
    fail=1
elif ! grep -q 'schema mismatch' "$out/refusal.txt"; then
    echo "FAIL: tune/bench refusal lacks a clear error message:" >&2
    cat "$out/refusal.txt" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "tune gate OK: deterministic artifact, $wins/$rows wins, hysteresis bound held, diff semantics shared"
