#!/usr/bin/env bash
# CI gate for the tail-forensics layer: the mmu-tricks-tail-v1 artifact must
# be complete, capture must cost zero cycles, two recordings must be
# byte-identical, and the planted E-TAIL regression must be *attributed* —
# the known cause has to win the ranking, not merely appear in it.
. "$(dirname "$0")/gate_lib.sh"

repro tail --depth quick --json "$out/tail.json" >/dev/null

require_keys "$out/tail.json" \
    '"schema": "mmu-tricks-tail-v1"' '"workload"' '"machine"' \
    '"config"' '"tail"' '"total_cycles"' '"captured"' '"paths"' \
    '"p99_exact"' '"causes"' '"top_cause"' '"exemplars"' \
    '"above_median"' '"window_events"' '"htab_full_groups"'

# The zero-overhead guarantee: the harness ran the reference workload with
# capture dormant and armed and recorded the cycle difference. Any nonzero
# value means threshold checks or exemplar assembly leaked into the
# simulation clock.
require_contains "$out/tail.json" '"overhead_cycles": 0,' \
    "tail-armed and dormant cycle totals diverge"

# Capture must actually have retained exemplars (an empty reservoir would
# make the overhead and determinism checks vacuous).
captured="$(json_number "$out/tail.json" captured)"
if [ -z "$captured" ] || [ "$captured" -lt 1 ]; then
    gate_fail "tail capture retained no exemplars (got '${captured:-none}')"
fi

# Determinism: a second recording of the same run must be byte-identical —
# same exemplars, same cycles, same attribution, same serialization.
repro tail --depth quick --json "$out/tail2.json" >/dev/null
require_byte_identical "$out/tail.json" "$out/tail2.json" \
    "two tail recordings differ (capture is nondeterministic)"

# The artifact must plug into the diff surface: self-diff parses and is
# clean (exit 0, no regressions against itself).
require_diff_accepts "$out/tail.json" "$out/tail2.json"

# The planted regression: E-TAIL saturates a 16-PTEG table so every
# steady-state reload miss is a secondary-hash storm, then checks the
# ranking. All three gates (attribution, zero-cost, determinism) must pass.
repro etail --depth quick > "$out/etail.txt"
require_contains "$out/etail.txt" 'storm attributed: pass' \
    "E-TAIL did not attribute the planted PTEG-saturation storm"
require_absent "$out/etail.txt" 'FAIL' "an E-TAIL gate failed"

gate_ok "tail gate OK: artifact complete, capture overhead = 0, recordings byte-identical, planted storm attributed"
