#!/usr/bin/env bash
# CI gate for the tail-forensics layer: the mmu-tricks-tail-v1 artifact must
# be complete, capture must cost zero cycles, two recordings must be
# byte-identical, and the planted E-TAIL regression must be *attributed* —
# the known cause has to win the ranking, not merely appear in it.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

cargo run --release -p bench --bin repro -- tail --depth quick \
    --json "$out/tail.json" >/dev/null

fail=0
for key in '"schema": "mmu-tricks-tail-v1"' '"workload"' '"machine"' \
           '"config"' '"tail"' '"total_cycles"' '"captured"' '"paths"' \
           '"p99_exact"' '"causes"' '"top_cause"' '"exemplars"' \
           '"above_median"' '"window_events"' '"htab_full_groups"'; do
    if ! grep -q -- "$key" "$out/tail.json"; then
        echo "FAIL: tail.json is missing $key" >&2
        fail=1
    fi
done

# The zero-overhead guarantee: the harness ran the reference workload with
# capture dormant and armed and recorded the cycle difference. Any nonzero
# value means threshold checks or exemplar assembly leaked into the
# simulation clock.
if ! grep -q '"overhead_cycles": 0,' "$out/tail.json"; then
    echo "FAIL: tail-armed and dormant cycle totals diverge:" >&2
    grep '"overhead_cycles"' "$out/tail.json" >&2 || true
    fail=1
fi

# Capture must actually have retained exemplars (an empty reservoir would
# make the overhead and determinism checks vacuous).
captured="$(grep -o '"captured": [0-9]*' "$out/tail.json" | head -1 | grep -o '[0-9]*$')"
if [ -z "$captured" ] || [ "$captured" -lt 1 ]; then
    echo "FAIL: tail capture retained no exemplars (got '${captured:-none}')" >&2
    fail=1
fi

# Determinism: a second recording of the same run must be byte-identical —
# same exemplars, same cycles, same attribution, same serialization.
cargo run --release -p bench --bin repro -- tail --depth quick \
    --json "$out/tail2.json" >/dev/null
if ! cmp -s "$out/tail.json" "$out/tail2.json"; then
    echo "FAIL: two tail recordings differ (capture is nondeterministic)" >&2
    diff "$out/tail.json" "$out/tail2.json" | head -20 >&2 || true
    fail=1
fi

# The artifact must plug into the diff surface: self-diff parses and is
# clean (exit 0, no regressions against itself).
cargo run --release -p bench --bin repro -- diff \
    "$out/tail.json" "$out/tail2.json" > "$out/diff.txt"
if ! grep -q 'config A:' "$out/diff.txt"; then
    echo "FAIL: repro diff did not accept the tail artifact" >&2
    fail=1
fi

# The planted regression: E-TAIL saturates a 16-PTEG table so every
# steady-state reload miss is a secondary-hash storm, then checks the
# ranking. All three gates (attribution, zero-cost, determinism) must pass.
cargo run --release -p bench --bin repro -- etail --depth quick > "$out/etail.txt"
if ! grep -q 'storm attributed: pass' "$out/etail.txt"; then
    echo "FAIL: E-TAIL did not attribute the planted PTEG-saturation storm" >&2
    cat "$out/etail.txt" >&2
    fail=1
fi
if grep -q 'FAIL' "$out/etail.txt"; then
    echo "FAIL: an E-TAIL gate failed:" >&2
    cat "$out/etail.txt" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "tail gate OK: artifact complete, capture overhead = 0, recordings byte-identical, planted storm attributed"
