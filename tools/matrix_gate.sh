#!/usr/bin/env bash
# CI gate for the differential-observability surface: the bench matrix, the
# structured diff, the perf/flamegraph diff, and the E-MATRIX ordering.
#
# 1. `repro matrix` smoke: the full grid runs at quick depth and the
#    mmu-tricks-matrix-v1 JSON carries every machine, config and workload.
# 2. `repro diff` sanity: a self-diff reports zero changes; documents with
#    mismatched identity headers are refused.
# 3. `repro perf diff`: profiles of the unoptimized vs optimized kernel on
#    the same workload diff cleanly, the optimized side is faster, and the
#    folded flamegraph diff carries signed weights. Profiles of different
#    workloads are refused.
# 4. `repro ematrix`: every paper optimization's before/after sign matches
#    §8 (any "INVERTED" row fails).
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

fail=0

# --- 1. matrix smoke + schema validation -----------------------------------
cargo run --release -p bench --bin repro -- matrix --depth quick \
    --json "$out/matrix.json" >/dev/null

if ! grep -q '"schema": "mmu-tricks-matrix-v1"' "$out/matrix.json"; then
    echo "FAIL: matrix.json has the wrong schema" >&2
    fail=1
fi
cells="$(grep -c '"cell": "' "$out/matrix.json" || true)"
if [ "$cells" -ne 96 ]; then
    echo "FAIL: expected 96 matrix cells (4 machines x 8 configs x 3 workloads), got $cells" >&2
    fail=1
fi
for m in 603-swload 603-nohtab 604-133 604-200; do
    if ! grep -q "\"cell\": \"$m/" "$out/matrix.json"; then
        echo "FAIL: matrix.json has no cells for machine $m" >&2
        fail=1
    fi
done
for c in unopt opt opt-no-bats opt-untuned-scatter opt-slow-handlers \
         opt-eager-flush opt-no-idle-reclaim opt-clear-on-demand; do
    if ! grep -q "/$c/compile\"" "$out/matrix.json"; then
        echo "FAIL: matrix.json has no cells for config $c" >&2
        fail=1
    fi
done
for key in '"wall_us"' '"tlb_reloads"' '"p99"' '"machines"' '"configs"'; do
    if ! grep -q -- "$key" "$out/matrix.json"; then
        echo "FAIL: matrix.json is missing $key" >&2
        fail=1
    fi
done

# --- 1b. parallel matrix is byte-identical ---------------------------------
# `--jobs N` claims cells from an atomic counter but assembles the grid in
# serial order, so the artifact must not differ by a single byte.
cargo run --release -p bench --bin repro -- matrix --depth quick --jobs 4 \
    --json "$out/matrix-par.json" >/dev/null
if ! cmp -s "$out/matrix.json" "$out/matrix-par.json"; then
    echo "FAIL: repro matrix --jobs 4 is not byte-identical to the serial run" >&2
    diff "$out/matrix.json" "$out/matrix-par.json" | head -5 >&2 || true
    fail=1
fi

# --- 2. structured diff -----------------------------------------------------
cargo run --release -p bench --bin repro -- bench --depth quick \
    --json "$out/bench.json" >/dev/null
cargo run --release -p bench --bin repro -- diff "$out/bench.json" "$out/bench.json" \
    --json "$out/self-diff.json" >/dev/null
if ! grep -q '"schema": "mmu-tricks-diff-v1"' "$out/self-diff.json"; then
    echo "FAIL: diff JSON has the wrong schema" >&2
    fail=1
fi
if ! grep -q '"changed": 0' "$out/self-diff.json"; then
    echo "FAIL: self-diff reported nonzero changes" >&2
    grep '"changed"' "$out/self-diff.json" >&2 || true
    fail=1
fi
# Incompatible documents (bench vs matrix schema) must be refused.
if cargo run --release -p bench --bin repro -- diff \
       "$out/bench.json" "$out/matrix.json" >/dev/null 2>"$out/refusal.txt"; then
    echo "FAIL: diff accepted documents with mismatched schemas" >&2
    fail=1
elif ! grep -q 'schema mismatch' "$out/refusal.txt"; then
    echo "FAIL: schema refusal lacks a clear error message:" >&2
    cat "$out/refusal.txt" >&2
    fail=1
fi

# --- 3. perf diff -----------------------------------------------------------
cargo run --release -p bench --bin repro -- perf record --depth quick \
    --workload compile --period 16384 --config unopt --out "$out/unopt.perf" >/dev/null
cargo run --release -p bench --bin repro -- perf record --depth quick \
    --workload compile --period 16384 --config opt --out "$out/opt.perf" >/dev/null
cargo run --release -p bench --bin repro -- perf diff "$out/unopt.perf" "$out/opt.perf" \
    --folded "$out/diff.folded" > "$out/perfdiff.txt"
for key in 'cycles_delta ' 'weight_delta ' 'stacks_changed '; do
    if ! grep -q -- "$key" "$out/perfdiff.txt"; then
        echo "FAIL: perf diff summary is missing $key" >&2
        fail=1
    fi
done
# unopt -> opt must be an improvement (negative cycle delta).
if ! grep -q '^cycles_delta -' "$out/perfdiff.txt"; then
    echo "FAIL: optimized kernel did not improve on unoptimized in perf diff:" >&2
    grep '^cycles_delta' "$out/perfdiff.txt" >&2 || true
    fail=1
fi
# The folded diff carries signed per-stack weights.
if ! grep -Eq '^[^ ]+ [+-][0-9]+$' "$out/diff.folded"; then
    echo "FAIL: folded flamegraph diff has no signed weights" >&2
    fail=1
fi
# Profiles of different workloads must be refused.
cargo run --release -p bench --bin repro -- perf record --depth quick \
    --workload storm --period 16384 --out "$out/storm.perf" >/dev/null
if cargo run --release -p bench --bin repro -- perf diff \
       "$out/opt.perf" "$out/storm.perf" >/dev/null 2>"$out/refusal2.txt"; then
    echo "FAIL: perf diff accepted profiles of different workloads" >&2
    fail=1
elif ! grep -q 'workload mismatch' "$out/refusal2.txt"; then
    echo "FAIL: workload refusal lacks a clear error message:" >&2
    cat "$out/refusal2.txt" >&2
    fail=1
fi

# --- 4. E-MATRIX ordering ---------------------------------------------------
cargo run --release -p bench --bin repro -- ematrix --depth quick > "$out/ematrix.txt"
if grep -q 'INVERTED' "$out/ematrix.txt"; then
    echo "FAIL: E-MATRIX found optimization signs that contradict the paper:" >&2
    grep 'INVERTED' "$out/ematrix.txt" >&2
    fail=1
fi
signs="$(grep -c 'matches paper' "$out/ematrix.txt" || true)"
if [ "$signs" -lt 12 ]; then
    echo "FAIL: E-MATRIX table is missing rows (got $signs sign checks)" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "matrix gate OK: 96 cells, --jobs byte-identical, self-diff clean, incompatible diffs refused, perf diff signed, E-MATRIX matches the paper"
