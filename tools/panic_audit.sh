#!/bin/sh
# Gate against undocumented panics creeping into the simulated kernel.
#
# Policy (DESIGN.md §7): host panics in crates/kernel-sim/src are reserved
# for simulator-internal invariants, and each must be documented — either a
# `# Panics` rustdoc section on the function or an `expect("...")` message
# naming the invariant. Bare `panic!` / `.unwrap()` in non-test kernel code
# is a bug: user-reachable failures must flow through `KResult`.
#
# To add a legitimate invariant panic, document it in the code and add its
# message to the allowlist below.
set -eu

cd "$(dirname "$0")/.."

# Messages of documented invariant panics (extended regex, one per line).
allow='translation for .* did not converge|unknown telemetry series|MM check violation|MM invariant violated at mmtune epoch boundary'

offenders=$(
    for f in crates/kernel-sim/src/*.rs; do
        case "$f" in
        */tests*.rs) continue ;; # test-only modules may unwrap freely
        esac
        # Strip in-file test modules (last item in every file here) and
        # comment lines, then flag bare panic!/unwrap() sites.
        sed '/#\[cfg(test)\]/,$d' "$f" |
            grep -n 'panic!(\|\.unwrap()' |
            grep -v '^[0-9]*:[[:space:]]*//' |
            grep -vE "$allow" |
            sed "s|^|$f:|" || true
    done
)

if [ -n "$offenders" ]; then
    echo "panic_audit: undocumented panic!/unwrap() in kernel code:" >&2
    printf '%s\n' "$offenders" >&2
    echo "Use KResult for user-reachable failures, or a documented" >&2
    echo 'expect("<invariant>") for true invariants (see DESIGN.md §7).' >&2
    exit 1
fi

echo "panic_audit: clean"
