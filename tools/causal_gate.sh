#!/usr/bin/env bash
# CI gate for the causal what-if profiler: the mmu-tricks-causal-v1
# artifact must be complete, every cell's all-1/1 run must match its plain
# baseline (identity_ok), two recordings must be byte-identical, the
# E-CAUSAL ground-truth gates must hold, and every artifact schema in the
# workspace must be registered in the `repro --help` schema table.
. "$(dirname "$0")/gate_lib.sh"

repro causal --depth quick --json "$out/causal.json" >/dev/null

require_keys "$out/causal.json" \
    '"schema": "mmu-tricks-causal-v1"' '"depth"' '"config"' \
    '"causal": "grid-f0-25-50-75"' '"identity_ok"' '"cells"' \
    '"baseline_cycles"' '"identity_cycles"' '"targets"' \
    '"path:tlb_reload"' '"path:page_fault"' '"path:htab_rehash"' \
    '"path:flush"' '"path:signal_delivery"' '"sub:idle"' \
    '"payoff_ppm"' '"marginal_ppm_per_pct"' '"ranking"'

# The identity guarantee, live in the recording itself: every cell ran a
# real all-1/1 causal config next to its plain baseline and the cycle
# totals matched. 0 here means the scaling engine leaked into an
# unscaled run.
require_contains "$out/causal.json" '"identity_ok": 1' \
    "a factor-0 causal run diverged from its plain baseline"

# Determinism: payoff curves and the marginal ranking are exact re-runs of
# a deterministic simulator — a second recording must be byte-identical.
repro causal --depth quick --json "$out/causal2.json" >/dev/null
require_byte_identical "$out/causal.json" "$out/causal2.json" \
    "two causal recordings differ (virtual speedups are nondeterministic)"

# The artifact must plug into the diff surface (self-diff parses clean;
# the causal identity header refusing plain artifacts is unit-tested).
require_diff_accepts "$out/causal.json" "$out/causal2.json"

# E-CAUSAL ground truth: the zeroed reload path must explain the measured
# 603 swload-vs-nohtab delta, a virtual idle-task speedup must buy ~0 on
# the latency-bound fault storm (§9), and the trimmed grid must reproduce.
repro ecausal --depth quick > "$out/ecausal.txt"
require_contains "$out/ecausal.txt" 'delta explained: pass' \
    "E-CAUSAL: zeroed reload path did not reproduce the measured row delta"
require_contains "$out/ecausal.txt" 'idle buys nothing: pass' \
    "E-CAUSAL: a virtual idle-task speedup bought real end-to-end time (§9)"
require_contains "$out/ecausal.txt" 'reproducible: pass' \
    "E-CAUSAL: causal recordings are not byte-reproducible"
require_absent "$out/ecausal.txt" 'FAIL' "an E-CAUSAL gate failed"

# Schema-registry completeness: every mmu-tricks-*-v* literal in the
# workspace sources must appear in the `repro --help` artifact table, so
# an artifact added without a registry row fails here, not in code review.
repro --help > "$out/help.txt"
for schema in $(grep -rhoE 'mmu-tricks-[a-z]+-v[0-9]+' crates/*/src | sort -u); do
    if ! grep -q -- "$schema" "$out/help.txt"; then
        gate_fail "schema $schema is not registered in the repro --help artifact table"
    fi
done

gate_ok "causal gate OK: artifact complete, identity holds, recordings byte-identical, E-CAUSAL ground truth holds, schema registry complete"
