#!/usr/bin/env bash
# CI gate for the adversarial checking subsystem (`check` + `repro chaos`):
#
# 1. Fixed-seed fleet: N seeds of checked chaos (oracle + invariants +
#    full-spectrum injection) all run clean, and report nonzero oracle
#    observations and injected faults (an idle checker gates nothing).
# 2. Determinism: the same seed emits a byte-identical artifact twice, so
#    any red run is a one-command repro.
# 3. Zero-cost: the same seed with `--check off` reports the identical
#    cycle count (observation must not perturb the measurement).
# 4. Sensitivity: with the planted stale-TLB bug armed
#    (MMU_TRICKS_BUG_STALE_TLB skips the VSID bump in flush_context), the
#    oracle catches it within one run, names the staleness, and prints the
#    seed/step/config repro block.
# 5. CLI contract (the silent-exit-0 fix): no arguments, an unknown
#    subcommand, and a typo'd --flag all print usage to stderr and exit
#    nonzero; the chaos artifact carries the "check" header the diff
#    refusal keys on.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

fail=0
SEEDS=20
STEPS=300

# --- 1. the fixed-seed fleet -------------------------------------------------
if ! cargo run --release -p bench --bin repro -- chaos \
        --seed 1 --runs "$SEEDS" --steps "$STEPS" \
        --json "$out/chaos-a.json" > "$out/fleet.txt"; then
    echo "FAIL: checked chaos fleet had a violation:" >&2
    tail -5 "$out/fleet.txt" >&2 || true
    fail=1
fi
clean=$(grep -c ': clean' "$out/fleet.txt" || true)
if [ "$clean" -ne "$SEEDS" ]; then
    echo "FAIL: expected $SEEDS clean chaos runs, got $clean" >&2
    fail=1
fi
if grep -q 'oracle_obs=0 ' "$out/fleet.txt"; then
    echo "FAIL: a chaos run saw zero oracle observations (checker idle)" >&2
    fail=1
fi
if grep -q 'injected=0 ' "$out/fleet.txt"; then
    echo "FAIL: a chaos run injected zero faults (injector idle)" >&2
    fail=1
fi

# --- 2. same-seed determinism ------------------------------------------------
cargo run --release -p bench --bin repro -- chaos \
    --seed 1 --runs "$SEEDS" --steps "$STEPS" \
    --json "$out/chaos-b.json" >/dev/null
if ! cmp -s "$out/chaos-a.json" "$out/chaos-b.json"; then
    echo "FAIL: two same-seed chaos fleets are not byte-identical" >&2
    diff "$out/chaos-a.json" "$out/chaos-b.json" | head -5 >&2 || true
    fail=1
fi
if ! grep -q '"check": "on"' "$out/chaos-a.json"; then
    echo "FAIL: chaos artifact is missing the check header" >&2
    fail=1
fi

# --- 3. check-off cycle identity ---------------------------------------------
cargo run --release -p bench --bin repro -- chaos \
    --seed 1 --steps "$STEPS" > "$out/on.txt"
cargo run --release -p bench --bin repro -- chaos \
    --seed 1 --steps "$STEPS" --check off > "$out/off.txt"
cycles_on=$(sed -n 's/.*cycles=\([0-9]*\).*/\1/p' "$out/on.txt")
cycles_off=$(sed -n 's/.*cycles=\([0-9]*\).*/\1/p' "$out/off.txt")
if [ -z "$cycles_on" ] || [ "$cycles_on" != "$cycles_off" ]; then
    echo "FAIL: checker is not zero-cost (on=$cycles_on off=$cycles_off)" >&2
    fail=1
fi

# --- 4. the planted bug is caught --------------------------------------------
if MMU_TRICKS_BUG_STALE_TLB=1 cargo run --release -p bench --bin repro -- \
        chaos --seed 1 --steps "$STEPS" > "$out/bug.txt" 2>&1; then
    echo "FAIL: the planted stale-TLB bug escaped the oracle" >&2
    fail=1
else
    if ! grep -q 'MM check violation' "$out/bug.txt"; then
        echo "FAIL: planted-bug run failed without an oracle violation:" >&2
        tail -3 "$out/bug.txt" >&2
        fail=1
    fi
    if ! grep -q 'stale' "$out/bug.txt"; then
        echo "FAIL: planted-bug violation does not name the staleness" >&2
        fail=1
    fi
    if ! grep -q 'repro: repro chaos --seed' "$out/bug.txt"; then
        echo "FAIL: planted-bug violation has no one-command repro line" >&2
        fail=1
    fi
fi

# --- 5. CLI exit-code contract -----------------------------------------------
run_repro() { cargo run -q --release -p bench --bin repro -- "$@"; }
if run_repro > "$out/noargs.out" 2> "$out/noargs.err"; then
    echo "FAIL: repro with no arguments exited 0" >&2
    fail=1
fi
if [ -s "$out/noargs.out" ] || ! grep -q 'usage:' "$out/noargs.err"; then
    echo "FAIL: repro with no arguments must print usage to stderr only" >&2
    fail=1
fi
if run_repro no-such-subcommand >/dev/null 2> "$out/unknown.err"; then
    echo "FAIL: repro with an unknown subcommand exited 0" >&2
    fail=1
fi
if ! grep -q 'unknown experiment' "$out/unknown.err"; then
    echo "FAIL: unknown subcommand error is not diagnostic" >&2
    fail=1
fi
if run_repro bench --dpeth full >/dev/null 2> "$out/badflag.err"; then
    echo "FAIL: repro with a typo'd flag exited 0" >&2
    fail=1
fi
if ! grep -q -- '--dpeth' "$out/badflag.err"; then
    echo "FAIL: typo'd-flag error does not name the flag" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "chaos gate OK: $clean/$SEEDS seeds clean, deterministic artifact, check-off cycle-identical, planted bug caught, CLI exit codes honest"
