#!/usr/bin/env bash
# CI gate for performance regressions: regenerate the benchmark baseline at
# quick depth and compare each workload's headline cycle count against the
# committed BENCH_PR3.json. The simulator is deterministic, so any drift is
# a real behavior change; more than 2% slower fails the gate. (Speedups and
# small modeling shifts pass — refresh the baseline deliberately with
#   cargo run --release -p bench --bin repro -- bench --json BENCH_PR3.json
# and commit the diff.)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="BENCH_PR3.json"
if [ ! -f "$baseline" ]; then
    echo "FAIL: $baseline is not committed" >&2
    exit 1
fi

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

cargo run --release -p bench --bin repro -- bench --depth quick \
    --json "$out/bench.json" >/dev/null

# Pulls the headline cycle count for one workload out of a bench JSON.
cycles_of() { # file workload
    grep -o "\"$2\": {\"cycles\": [0-9]*" "$1" | grep -o '[0-9]*$'
}

fail=0
for wl in compile fault_storm trace_ref; do
    old="$(cycles_of "$baseline" "$wl" || true)"
    new="$(cycles_of "$out/bench.json" "$wl" || true)"
    if [ -z "$old" ] || [ -z "$new" ]; then
        echo "FAIL: workload $wl missing from baseline or fresh run" >&2
        fail=1
        continue
    fi
    # >2% regression: new * 100 > old * 102 (integer math, no bc needed).
    if [ "$((new * 100))" -gt "$((old * 102))" ]; then
        echo "FAIL: $wl regressed ${old} -> ${new} cycles (>2%)" >&2
        fail=1
    else
        echo "bench gate: $wl ${old} -> ${new} cycles"
    fi
done

# Second pass: the multi-machine bench matrix. Every machine × config ×
# workload cell of the committed BENCH_PR4.json is compared against a fresh
# run; any cell more than 2% slower fails. This covers every CPU model the
# paper measures (603 software-reload, 603 no-htab, 604/133, 604/200), not
# just the 604-133 the headline baseline runs on. Refresh deliberately with
#   cargo run --release -p bench --bin repro -- matrix --depth quick --json BENCH_PR4.json
matrix_baseline="BENCH_PR4.json"
if [ ! -f "$matrix_baseline" ]; then
    echo "FAIL: $matrix_baseline is not committed" >&2
    exit 1
fi

cargo run --release -p bench --bin repro -- matrix --depth quick \
    --json "$out/matrix.json" >/dev/null

# Pulls "cell cycles" pairs out of a matrix JSON (one cell per line).
cells_of() { # file
    grep -o '"cell": "[^"]*", "machine": "[^"]*", "config": "[^"]*", "workload": "[^"]*", "cycles": [0-9]*' "$1" \
        | sed 's/"cell": "\([^"]*\)".*"cycles": \([0-9]*\)/\1 \2/'
}

cells_of "$matrix_baseline" > "$out/cells.old"
cells_of "$out/matrix.json" > "$out/cells.new"

ncells="$(wc -l < "$out/cells.old")"
if [ "$ncells" -lt 1 ]; then
    echo "FAIL: no cells parsed from $matrix_baseline" >&2
    exit 1
fi
for m in 603-swload 603-nohtab 604-133 604-200; do
    if ! grep -q "^$m/" "$out/cells.old"; then
        echo "FAIL: baseline matrix has no cells for machine $m" >&2
        fail=1
    fi
done

while read -r cell old; do
    new="$(awk -v c="$cell" '$1 == c {print $2}' "$out/cells.new")"
    if [ -z "$new" ]; then
        echo "FAIL: matrix cell $cell missing from fresh run" >&2
        fail=1
        continue
    fi
    if [ "$((new * 100))" -gt "$((old * 102))" ]; then
        echo "FAIL: matrix cell $cell regressed ${old} -> ${new} cycles (>2%)" >&2
        fail=1
    fi
done < "$out/cells.old"

# Third pass: the tune baseline. BENCH_PR5.json pins the per-machine
# static and tuned cycle counts of `repro tune` on the fault storm; more
# than 2% slower on either side fails. Refresh deliberately with
#   cargo run --release -p bench --bin repro -- tune --depth quick --json BENCH_PR5.json
tune_baseline="BENCH_PR5.json"
if [ ! -f "$tune_baseline" ]; then
    echo "FAIL: $tune_baseline is not committed" >&2
    exit 1
fi

cargo run --release -p bench --bin repro -- tune --depth quick \
    --json "$out/tune.json" >/dev/null

# Pulls "machine static_cycles tuned_cycles" triples out of a tune JSON.
tune_rows_of() { # file
    grep -o '"machine": "[^"]*", "static_cycles": [0-9]*, "tuned_cycles": [0-9]*' "$1" \
        | sed 's/"machine": "\([^"]*\)", "static_cycles": \([0-9]*\), "tuned_cycles": \([0-9]*\)/\1 \2 \3/'
}

tune_rows_of "$tune_baseline" > "$out/tune.old"
tune_rows_of "$out/tune.json" > "$out/tune.new"
if [ "$(wc -l < "$out/tune.old")" -ne 4 ]; then
    echo "FAIL: expected 4 machine rows in $tune_baseline" >&2
    exit 1
fi
while read -r machine old_static old_tuned; do
    new_static="$(awk -v m="$machine" '$1 == m {print $2}' "$out/tune.new")"
    new_tuned="$(awk -v m="$machine" '$1 == m {print $3}' "$out/tune.new")"
    if [ -z "$new_static" ] || [ -z "$new_tuned" ]; then
        echo "FAIL: tune row $machine missing from fresh run" >&2
        fail=1
        continue
    fi
    if [ "$((new_static * 100))" -gt "$((old_static * 102))" ]; then
        echo "FAIL: tune static cycles on $machine regressed ${old_static} -> ${new_static} (>2%)" >&2
        fail=1
    fi
    if [ "$((new_tuned * 100))" -gt "$((old_tuned * 102))" ]; then
        echo "FAIL: tuned cycles on $machine regressed ${old_tuned} -> ${new_tuned} (>2%)" >&2
        fail=1
    fi
done < "$out/tune.old"

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "bench gate OK: no workload regressed more than 2% ($ncells matrix cells and 4 tune rows checked)"
