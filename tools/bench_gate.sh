#!/usr/bin/env bash
# CI gate for performance regressions: regenerate the benchmark baseline at
# quick depth and compare each workload's headline cycle count against the
# committed BENCH_PR3.json. The simulator is deterministic, so any drift is
# a real behavior change; more than 2% slower fails the gate. (Speedups and
# small modeling shifts pass — refresh the baseline deliberately with
#   cargo run --release -p bench --bin repro -- bench --json BENCH_PR3.json
# and commit the diff.)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="BENCH_PR3.json"
if [ ! -f "$baseline" ]; then
    echo "FAIL: $baseline is not committed" >&2
    exit 1
fi

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

cargo run --release -p bench --bin repro -- bench --depth quick \
    --json "$out/bench.json" >/dev/null

# Pulls the headline cycle count for one workload out of a bench JSON.
cycles_of() { # file workload
    grep -o "\"$2\": {\"cycles\": [0-9]*" "$1" | grep -o '[0-9]*$'
}

fail=0
for wl in compile fault_storm trace_ref; do
    old="$(cycles_of "$baseline" "$wl" || true)"
    new="$(cycles_of "$out/bench.json" "$wl" || true)"
    if [ -z "$old" ] || [ -z "$new" ]; then
        echo "FAIL: workload $wl missing from baseline or fresh run" >&2
        fail=1
        continue
    fi
    # >2% regression: new * 100 > old * 102 (integer math, no bc needed).
    if [ "$((new * 100))" -gt "$((old * 102))" ]; then
        echo "FAIL: $wl regressed ${old} -> ${new} cycles (>2%)" >&2
        fail=1
    else
        echo "bench gate: $wl ${old} -> ${new} cycles"
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "bench gate OK: no workload regressed more than 2%"
