#!/usr/bin/env bash
# CI gate for performance regressions: regenerate the tune baseline at quick
# depth and compare every per-machine row against the committed artifact
# (newest baseline by default; pass an alternative path as $1). The
# simulator is deterministic, so any drift is a real behavior change; more
# than 2% slower fails the gate. (Speedups and small modeling shifts pass —
# refresh the baseline deliberately with
#   cargo run --release -p bench --bin repro -- tune --depth quick --json BENCH_PR5.json
# and commit the diff.)
#
# Cycle coverage for the full machine × config × workload grid lives in
# tools/matrix_gate.sh; this gate pins the tune descent's endpoints (static
# and tuned cycles per machine).
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_PR5.json}"
if [ ! -f "$baseline" ]; then
    echo "FAIL: baseline $baseline is not committed" >&2
    exit 1
fi

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

fail=0

cargo run --release -p bench --bin repro -- tune --depth quick \
    --json "$out/tune.json" >/dev/null

# Pulls "machine static_cycles tuned_cycles" triples out of a tune JSON.
tune_rows_of() { # file
    grep -o '"machine": "[^"]*", "static_cycles": [0-9]*, "tuned_cycles": [0-9]*' "$1" \
        | sed 's/"machine": "\([^"]*\)", "static_cycles": \([0-9]*\), "tuned_cycles": \([0-9]*\)/\1 \2 \3/'
}

tune_rows_of "$baseline" > "$out/tune.old"
tune_rows_of "$out/tune.json" > "$out/tune.new"
if [ "$(wc -l < "$out/tune.old")" -ne 4 ]; then
    echo "FAIL: expected 4 machine rows in $baseline" >&2
    exit 1
fi
while read -r machine old_static old_tuned; do
    new_static="$(awk -v m="$machine" '$1 == m {print $2}' "$out/tune.new")"
    new_tuned="$(awk -v m="$machine" '$1 == m {print $3}' "$out/tune.new")"
    if [ -z "$new_static" ] || [ -z "$new_tuned" ]; then
        echo "FAIL: tune row $machine missing from fresh run" >&2
        fail=1
        continue
    fi
    if [ "$((new_static * 100))" -gt "$((old_static * 102))" ]; then
        echo "FAIL: tune static cycles on $machine regressed ${old_static} -> ${new_static} (>2%)" >&2
        fail=1
    fi
    if [ "$((new_tuned * 100))" -gt "$((old_tuned * 102))" ]; then
        echo "FAIL: tuned cycles on $machine regressed ${old_tuned} -> ${new_tuned} (>2%)" >&2
        fail=1
    fi
    echo "bench gate: $machine static ${old_static} -> ${new_static}, tuned ${old_tuned} -> ${new_tuned}"
done < "$out/tune.old"

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "bench gate OK: no tune row of $baseline regressed more than 2%"
