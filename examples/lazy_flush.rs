//! Lazy VSID flushing and the tunable range-flush cutoff (paper §7).
//!
//! Compares munmap cost under three policies — eager per-page hash-table
//! searches, lazy context bumps, and the 20-page cutoff between them — and
//! shows the mmap-latency cliff the cutoff creates.
//!
//! ```text
//! cargo run --release --example lazy_flush
//! ```

use kernel_sim::{Kernel, KernelConfig};
use lmbench::lat;
use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

fn munmap_cost(kcfg: KernelConfig, pages: u32) -> f64 {
    let mut k = Kernel::boot(MachineConfig::ppc603_133(), kcfg);
    let pid = k.spawn_process(8).unwrap();
    k.switch_to(pid);
    let addr = k.sys_mmap(None, pages * PAGE_SIZE);
    k.prefault(addr, pages).expect("mapped region fits in memory");
    let start = k.machine.cycles;
    k.sys_munmap(addr, pages * PAGE_SIZE);
    k.time_us(k.machine.cycles - start)
}

fn main() {
    let eager = KernelConfig {
        htab_on_603: true,
        lazy_flush: false,
        flush_cutoff_pages: None,
        ..KernelConfig::optimized()
    };
    let lazy = KernelConfig {
        htab_on_603: true,
        ..KernelConfig::optimized()
    };

    println!("munmap cost by policy (603 133MHz, populated mappings)\n");
    println!("pages   eager (per-page search)   lazy (cutoff 20)");
    for pages in [4u32, 16, 20, 24, 64, 256] {
        println!(
            "{:>5}   {:>20.1}us   {:>14.1}us",
            pages,
            munmap_cost(eager, pages),
            munmap_cost(lazy, pages),
        );
    }
    println!("\nBelow the 20-page cutoff both kernels search per page; above it");
    println!("the lazy kernel retires the whole context for a constant price.");

    // The lat_mmap headline: paper 3240us -> 41us (80x) on this machine.
    let mut k = Kernel::boot(MachineConfig::ppc603_133(), eager);
    let e = lat::mmap_latency(&mut k, 3);
    let mut k = Kernel::boot(MachineConfig::ppc603_133(), lazy);
    let l = lat::mmap_latency(&mut k, 3);
    println!("\nlat_mmap (16 MiB file mapping):");
    println!("  eager  {e:>8.0} us     (paper: 3240 us)");
    println!("  lazy   {l:>8.0} us     (paper:   41 us)");
    println!("  ratio  {:>8.0} x      (paper:   80 x)", e / l);
}
