//! The paper's favourite macro-benchmark: the kernel compile (paper §4),
//! run on the unoptimized and optimized kernels with the hardware monitor's
//! counters printed side by side.
//!
//! ```text
//! cargo run --release --example kernel_compile
//! ```

use kernel_sim::{Kernel, KernelConfig};
use lmbench::compile::{kernel_compile, CompileConfig};
use ppc_machine::MachineConfig;

fn main() {
    let machine = MachineConfig::ppc604_133();
    let cfg = CompileConfig::small();
    println!(
        "synthetic kernel compile: {} units, {}-page hot arena, {} wide pages\n",
        cfg.units, cfg.hot_pages, cfg.wide_pages
    );

    let mut rows = Vec::new();
    for (name, kcfg) in [
        ("unoptimized", KernelConfig::unoptimized()),
        ("optimized", KernelConfig::optimized()),
        ("extended (10)", KernelConfig::extended()),
    ] {
        let mut k = Kernel::boot(machine, kcfg);
        let r = kernel_compile(&mut k, cfg);
        rows.push((name, r));
    }

    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "kernel", "wall", "TLB misses", "dcache miss", "icache miss", "faults"
    );
    for (name, r) in &rows {
        println!(
            "{:<14} {:>8.1}ms {:>12} {:>12} {:>12} {:>10}",
            name,
            r.wall_ms,
            r.monitor.tlb_misses(),
            r.monitor.dcache.misses,
            r.monitor.icache.misses,
            r.kernel.page_faults,
        );
    }

    let unopt = rows[0].1.wall_ms;
    let opt = rows[1].1.wall_ms;
    println!(
        "\noptimized kernel compiles {:.0}% faster than the original",
        (unopt - opt) / unopt * 100.0
    );
    println!("(the paper's full campaign took its compile from 10 to 8 minutes,");
    println!(" with individual optimizations contributing the effects shown by");
    println!(" `cargo run -p bench --bin repro -- bat page-clear fast-reload`)");
}
