//! Table 3 live: Linux/PPC against the unoptimized kernel, the Mach-based
//! systems, and AIX, on the same 133 MHz 604.
//!
//! ```text
//! cargo run --release --example os_shootout
//! ```

use kernel_sim::OsModel;
use lmbench::report::run_suite_with;
use lmbench::SuiteConfig;
use ppc_machine::MachineConfig;

fn main() {
    let machine = MachineConfig::ppc604_133();
    println!("LmBench shoot-out on a {} (paper Table 3)\n", machine.name);
    println!(
        "{:<22} {:>12} {:>10} {:>10} {:>9}",
        "OS", "null syscall", "ctx switch", "pipe lat", "pipe bw"
    );
    // Paper values for reference.
    let paper: [(&str, f64, f64, f64, f64); 5] = [
        ("Linux/PPC", 2.0, 6.0, 28.0, 52.0),
        ("Unoptimized Linux/PPC", 18.0, 28.0, 78.0, 36.0),
        ("Rhapsody 5.0", 15.0, 64.0, 161.0, 9.0),
        ("MkLinux", 19.0, 64.0, 235.0, 15.0),
        ("AIX", 11.0, 24.0, 89.0, 21.0),
    ];
    for (model, p) in OsModel::table3().into_iter().zip(paper) {
        let r = run_suite_with(|| model.boot(machine), SuiteConfig::quick());
        println!(
            "{:<22} {:>10.1}us {:>8.1}us {:>8.1}us {:>5.0}MB/s",
            model.name, r.null_syscall_us, r.ctxsw2_us, r.pipe_lat_us, r.pipe_bw_mbs
        );
        println!(
            "{:<22} {:>10.1}us {:>8.1}us {:>8.1}us {:>5.0}MB/s   (paper)",
            "", p.1, p.2, p.3, p.4
        );
    }
    println!("\nThe paper's conclusion holds in the model: \"monolithic designs");
    println!("need not remain a stationary target\" — the tuned kernel beats the");
    println!("microkernel systems by an order of magnitude on kernel-crossing");
    println!("latency, and the optimization campaign itself is worth ~10x.");
}
