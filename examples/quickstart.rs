//! Quickstart: boot the paper's optimized kernel, run a process, and watch
//! the MMU work.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kernel_sim::{Kernel, KernelConfig};
use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

fn main() {
    // A 185 MHz PowerPC 604 running the fully optimized kernel of the paper.
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    println!("booted {} with the optimized kernel\n", k.machine.cfg.name);

    // Create a process with a 64-page working set and fault it in.
    let pid = k.spawn_process(64).expect("out of memory");
    k.switch_to(pid);
    let base = kernel_sim::sched::USER_BASE;
    k.prefault(base, 64).expect("working set fits in memory");
    println!("after faulting in 64 pages:");
    println!("  page faults        {}", k.stats.page_faults);
    println!("  TLB reloads        {}", k.stats.tlb_reloads);
    println!("  htab valid entries {}", k.htab.valid_entries());

    // Re-read the working set: TLB and cache are warm now.
    let cold = k.user_read(base, 64 * PAGE_SIZE).expect("in-VMA read");
    let warm = k.user_read(base, 64 * PAGE_SIZE).expect("in-VMA read");
    println!("\nsequential re-read of 256 KiB:");
    println!("  first pass  {} cycles", cold);
    println!("  second pass {} cycles", warm);

    // A few syscalls.
    let before = k.machine.cycles;
    for _ in 0..100 {
        k.sys_null();
    }
    let per = k.time_us(k.machine.cycles - before) / 100.0;
    println!("\nnull syscall: {per:.2} us (paper, optimized 133 MHz 604: 2 us)");

    // mmap + munmap a big region: the lazy flush makes this O(1)-ish.
    let before = k.machine.cycles;
    let addr = k.sys_mmap(None, 4 * 1024 * 1024);
    k.sys_munmap(addr, 4 * 1024 * 1024);
    println!(
        "mmap+munmap of 4 MiB: {:.1} us ({} context bumps — the 7 lazy flush)",
        k.time_us(k.machine.cycles - before),
        k.stats.context_bumps
    );

    // Let the idle task run long enough to sweep the whole hash table: it
    // reclaims the zombie entries the munmap's context bump left behind.
    k.run_idle(4_000_000);
    println!(
        "\nidle task ran: {} zombie PTEs reclaimed, {} pages pre-cleared",
        k.htab.stats().zombies_reclaimed,
        k.stats.idle_pages_cleared
    );
    println!(
        "\nsimulated wall clock so far: {}",
        k.machine.time().pretty()
    );
}
