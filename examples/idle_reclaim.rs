//! The title optimization: watch the idle task reclaim zombie hash-table
//! entries (paper §7).
//!
//! Two identical kernels run the same mmap-churn workload; one lets the idle
//! task scan the hash table for zombie PTEs. The printout shows the table
//! filling with zombies, the evict ratio exploding without reclaim, and the
//! reclaim keeping the table healthy.
//!
//! ```text
//! cargo run --release --example idle_reclaim
//! ```

use kernel_sim::{Kernel, KernelConfig};
use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

fn run(idle_reclaim: bool) {
    println!(
        "--- idle reclaim {} ---",
        if idle_reclaim { "ON " } else { "OFF" }
    );
    let kcfg = KernelConfig {
        idle_reclaim,
        ..KernelConfig::optimized()
    };
    let mut k = Kernel::boot(MachineConfig::ppc604_133(), kcfg);
    let pids: Vec<_> = (0..4).map(|_| k.spawn_process(64).unwrap()).collect();
    for &pid in &pids {
        k.switch_to(pid);
        k.prefault(kernel_sim::sched::USER_BASE, 64)
            .expect("working set fits in memory");
    }
    println!("round  valid  zombies  evict-ratio  reclaimed");
    for round in 0..12 {
        for &pid in &pids {
            k.switch_to(pid);
            // Map, touch and unmap a large region: the lazy flush retires
            // the whole context, turning its hash-table entries into
            // zombies.
            let addr = k.sys_mmap(None, 320 * PAGE_SIZE);
            k.prefault(addr, 320).expect("scratch region fits in memory");
            k.sys_munmap(addr, 320 * PAGE_SIZE);
            // Re-touch the live working set so its entries keep mattering.
            k.user_read(kernel_sim::sched::USER_BASE, 64 * PAGE_SIZE)
                .expect("in-VMA read");
            // The I/O wait in which the idle task runs.
            k.run_idle(200_000);
        }
        let valid = k.htab.valid_entries();
        let live = k.htab.live_entries(|v| k.vsids.is_live(v));
        println!(
            "{:>5}  {:>5}  {:>7}  {:>10.0}%  {:>9}",
            round,
            valid,
            valid - live,
            k.htab.stats().evict_ratio() * 100.0,
            k.htab.stats().zombies_reclaimed,
        );
    }
    println!(
        "final hash-table occupancy {:.0}% of {} slots\n",
        k.htab.occupancy() * 100.0,
        k.htab.capacity()
    );
}

fn main() {
    println!("Idle-task zombie reclamation (paper 7)\n");
    run(false);
    run(true);
    println!("Without reclaim the valid bits never clear: the table silts up");
    println!("with zombies and every reload must evict. With the idle task");
    println!("scanning, reloads find empty slots (paper: evict ratio >90% -> 30%).");
}
