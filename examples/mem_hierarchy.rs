//! The memory-hierarchy staircase: `lat_mem_rd` across the paper's machines.
//!
//! Every cost in the reproduction bottoms out in this chart: L1 hits, board
//! L2 hits, and DRAM fills. The shape column is a sparkline of latency vs
//! working-set size.
//!
//! ```text
//! cargo run --release --example mem_hierarchy
//! ```

use mmu_tricks::experiments::memory_hierarchy;
use mmu_tricks::Depth;

fn main() {
    let (_, table) = memory_hierarchy(Depth::Quick);
    println!("{}", table.render());
    println!("Plateaus sit exactly at the configured cache sizes: 8/16/32 KiB");
    println!("L1s, 256/512 KiB board L2s (none on the PReP 603), then DRAM.");
    println!("The 604/200's fast board shows as a uniformly lower staircase.");
}
