//! Copy-on-write fork through the MMU's protection machinery.
//!
//! `fork()` shares every anonymous page read-only between parent and child;
//! the first store from either side takes a protection fault through the
//! same translation pipeline the paper optimizes, copies the frame, and
//! remaps. Watch the frames and faults move.
//!
//! ```text
//! cargo run --release --example fork_cow
//! ```

use kernel_sim::{Kernel, KernelConfig};
use ppc_machine::MachineConfig;
use ppc_mmu::addr::PAGE_SIZE;

fn main() {
    let mut k = Kernel::boot(MachineConfig::ppc604_185(), KernelConfig::optimized());
    let parent = k.spawn_process(32).unwrap();
    k.switch_to(parent);
    let base = kernel_sim::sched::USER_BASE;
    k.prefault(base, 32).expect("working set fits in memory");
    println!(
        "parent faulted in 32 pages; free frames: {}",
        k.frames.free_frames()
    );

    let c0 = k.machine.cycles;
    let child = k.sys_fork().expect("fork");
    println!(
        "\nfork(): {:.1} us — no user frames copied (free frames: {}, shared: {})",
        k.time_us(k.machine.cycles - c0),
        k.frames.free_frames(),
        k.shared_frames_len(),
    );

    // Child writes 8 of the 32 pages: 8 protection faults, 8 frame copies.
    k.switch_to(child);
    let c0 = k.machine.cycles;
    for i in 0..8 {
        k.data_ref(ppc_mmu::addr::EffectiveAddress(base + i * PAGE_SIZE), true)
            .expect("in-VMA write");
    }
    println!(
        "child dirtied 8 pages: {:.1} us, {} COW faults, free frames now {}",
        k.time_us(k.machine.cycles - c0),
        k.stats.cow_faults,
        k.frames.free_frames(),
    );

    // Parent's view of those pages is untouched (its frames are the
    // originals); writing one costs the parent a COW break too.
    k.switch_to(parent);
    let before = k.stats.cow_faults;
    k.data_ref(ppc_mmu::addr::EffectiveAddress(base), true)
        .expect("in-VMA write");
    println!(
        "parent wrote page 0: {} more COW fault(s)",
        k.stats.cow_faults - before
    );

    // Child exits; the parent becomes sole owner of the rest — later writes
    // upgrade in place, copying nothing.
    k.switch_to(child);
    k.exit_current();
    let frames_before = k.frames.free_frames();
    let before = k.stats.cow_faults;
    k.data_ref(ppc_mmu::addr::EffectiveAddress(base + 16 * PAGE_SIZE), true)
        .expect("in-VMA write");
    println!(
        "\nafter child exit, parent wrote a still-shared page: {} fault(s), {} frames copied",
        k.stats.cow_faults - before,
        frames_before - k.frames.free_frames(),
    );
    println!("(sole owner upgrades in place — no copy)");
}
