//! Umbrella crate for the reproduction of *Optimizing the Idle Task and
//! Other MMU Tricks* (Dougan, Mackerras, Yodaiken; OSDI 1999).
//!
//! This crate re-exports the whole workspace so the examples and integration
//! tests have a single dependency. The layering, bottom-up:
//!
//! * [`ppc_cache`] — L1/L2 caches, memory bus, cache-inhibited access.
//! * [`ppc_mmu`] — segments, VSIDs, BATs, TLBs, the hashed page table.
//! * [`ppc_machine`] — machine configurations and cycle accounting.
//! * [`kernel_sim`] — the simulated Linux/PPC kernel with every paper
//!   optimization as a policy toggle.
//! * [`lmbench`] — the benchmark workloads the paper measures with.
//! * [`mmu_tricks`] — experiment runners for every table and figure.
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the experiment
//! index.

pub use kernel_sim;
pub use lmbench;
pub use mmu_tricks;
pub use ppc_cache;
pub use ppc_machine;
pub use ppc_mmu;
